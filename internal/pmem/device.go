// Package pmem simulates a byte-addressable persistent-memory device.
//
// The device stands in for the Intel Optane DC PMM the paper evaluates on
// (repro note: we have no PM hardware and user space cannot control DAX
// hugepage mappings, so the device — like the MMU above it — is simulated).
// It provides:
//
//   - a sparse, lazily allocated backing store (2MiB host chunks) so
//     multi-GiB simulated partitions don't consume multi-GiB of host RAM;
//   - virtual-time cost accounting for loads, stores, flushes and fences,
//     with a shared bandwidth resource per NUMA node;
//   - an optional store trace with fence epochs, which the crash-consistency
//     harness uses to build crash states from real in-flight reorderings.
package pmem

import (
	"fmt"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
)

const (
	// ChunkSize is the granularity of lazy host allocation.
	ChunkSize = 2 << 20
	// CacheLine is the persistence granularity (clwb unit).
	CacheLine = 64

	// initPage is the granularity of lazy chunk initialization: each 4KiB
	// page of a pooled chunk is cleared (or wholly overwritten) at most
	// once, the first time an access touches it.
	initPage      = 4096
	initPageShift = 12
	pagesPerChunk = ChunkSize / initPage // 512 pages
	wordsPerChunk = pagesPerChunk / 64   // 8 bitmap words
)

// Device is a simulated persistent-memory module set. It is safe for
// concurrent use.
type Device struct {
	size  int64
	nodes int
	cpus  int
	model CostModel

	// chunks is the dense backing-store table, one slot per 2MiB chunk;
	// nil slots read as zero. Slots are atomic pointers so the hot
	// read/write paths dereference them lock-free — the former
	// map+RWMutex pair cost two atomic RMWs per 4KiB access and showed up
	// at several percent of host CPU on the scaling sweep.
	chunks  []atomic.Pointer[chunkBuf]
	nBacked atomic.Int64 // backed chunk count, for HostBytes

	// initPages is the per-chunk initialization bitmap, wordsPerChunk
	// words per chunk: bit p set means 4KiB page p of the chunk holds
	// real content (written or zeroed); a clear bit means the page still
	// holds stale pool garbage and logically reads as zero. Pooled chunks
	// are installed dirty and pages initialize lazily — eagerly clearing
	// 2MiB on first touch made memclr 15%% of scaling-sweep CPU, and a
	// single watermark re-cleared ~512KiB gaps every time the journal
	// region was dropped and its mid-chunk header rewritten (4GiB of
	// memclr per sweep). Fully overwritten pages flip their bit with one
	// atomic OR and are never cleared at all; only partial first touches
	// take the stripe lock in initMu and clear the uncovered remainder.
	initPages []atomic.Uint64
	initMu    [64]sync.Mutex

	// snapMu makes Snapshot/Restore atomic with respect to content
	// mutations: mutators hold it shared for the duration of their byte
	// copies, Snapshot/Restore hold it exclusively. Without it a snapshot
	// taken while another goroutine streams a write (the replication
	// resync path snapshots a live primary) could capture a half-applied
	// store. Mutators release it before invoking the write observer, so an
	// observer may take locks that a snapshot caller holds. Devices built
	// with Config.NoSnapshot never snapshot, so their mutators skip the
	// shared acquisition entirely (noSnap true).
	snapMu sync.RWMutex
	noSnap bool

	// port is the per-NUMA-node device port: reads and writes share one
	// calendar (mixed read/write traffic interferes on Optane, which is
	// what makes background defragmentation steal 25-40%% of foreground
	// bandwidth in §4's experiment).
	port        []*sim.Resource
	readNSPerB  float64
	writeNSPerB float64

	traceMu sync.Mutex
	tracing bool
	// tracingOn mirrors tracing so the per-store fast path is one atomic
	// load instead of a mutex round trip (record was ~2%% of sweep CPU
	// with tracing off).
	tracingOn atomic.Bool
	epoch     int
	trace     []Store

	// fault holds media-fault state (poison map, fault plan); lazily
	// allocated so fault-free devices pay nothing. See fault.go.
	faultOnce sync.Once
	fault     *faultState

	// obs, when set, sees every content mutation (WriteAt/ZeroRange/
	// DiscardRange) after it lands. internal/cluster taps this to stream a
	// primary's writes to replicas. Restore is exempt: it rewrites the
	// device wholesale (crash-image injection), which is not a store.
	obs atomic.Pointer[observerBox]
}

// WriteObserver sees every device content mutation. Callbacks run on the
// mutating goroutine after the store landed, outside the device locks; an
// implementation must copy data if it keeps it.
type WriteObserver interface {
	ObserveWrite(off int64, data []byte)
	ObserveZero(off, n int64)
	ObserveDiscard(off, n int64)
}

// observerBox wraps the interface so it fits an atomic.Pointer.
type observerBox struct{ obs WriteObserver }

// SetWriteObserver installs (or, with nil, removes) the device's write
// observer. Only one observer is supported; installing replaces.
func (d *Device) SetWriteObserver(obs WriteObserver) {
	if obs == nil {
		d.obs.Store(nil)
		return
	}
	d.obs.Store(&observerBox{obs: obs})
}

func (d *Device) observer() WriteObserver {
	if b := d.obs.Load(); b != nil {
		return b.obs
	}
	return nil
}

// Config controls device construction.
type Config struct {
	// Size is the device capacity in bytes. Rounded up to a chunk multiple.
	Size int64
	// Nodes is the number of NUMA nodes (default 1).
	Nodes int
	// CPUs is the number of logical CPUs that address the device; used to
	// map a Ctx's CPU to a NUMA node (default 8).
	CPUs int
	// Model overrides the cost model; zero value means DefaultModel.
	Model *CostModel
	// NoSnapshot declares that the device will never be snapshotted:
	// Snapshot/Restore/Save panic, and in exchange every mutator skips the
	// snapshot reader-lock round trip on its hot path. Benchmark harnesses
	// that only ever run workloads (never crash images or replica resync)
	// set this; anything that might snapshot a live device must not.
	NoSnapshot bool
}

// New creates a device of the given size with the default model and a
// single NUMA node.
func New(size int64) *Device {
	return NewWithConfig(Config{Size: size})
}

// NewWithConfig creates a device from cfg.
func NewWithConfig(cfg Config) *Device {
	if cfg.Size <= 0 {
		panic("pmem: non-positive device size")
	}
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	if cfg.CPUs <= 0 {
		cfg.CPUs = 8
	}
	m := DefaultModel()
	if cfg.Model != nil {
		m = *cfg.Model
	}
	size := (cfg.Size + ChunkSize - 1) / ChunkSize * ChunkSize
	d := &Device{
		size:      size,
		nodes:     cfg.Nodes,
		cpus:      cfg.CPUs,
		model:     m,
		noSnap:    cfg.NoSnapshot,
		chunks:    make([]atomic.Pointer[chunkBuf], size/ChunkSize),
		initPages: make([]atomic.Uint64, size/ChunkSize*wordsPerChunk),
	}
	for i := 0; i < cfg.Nodes; i++ {
		d.port = append(d.port, &sim.Resource{})
	}
	if m.ReadBandwidth > 0 {
		d.readNSPerB = 1e9 / (m.ReadBandwidth / float64(cfg.Nodes))
	}
	if m.WriteBandwidth > 0 {
		d.writeNSPerB = 1e9 / (m.WriteBandwidth / float64(cfg.Nodes))
	}
	return d
}

// Size returns the device capacity in bytes.
func (d *Device) Size() int64 { return d.size }

// Nodes returns the NUMA node count.
func (d *Device) Nodes() int { return d.nodes }

// Model returns the device's cost model.
func (d *Device) Model() *CostModel { return &d.model }

// NodeOf returns the NUMA node holding byte offset off: the address space
// is striped across nodes in equal contiguous halves, as with interleaved
// namespaces per socket.
func (d *Device) NodeOf(off int64) int {
	if d.nodes == 1 {
		return 0
	}
	n := int(off / (d.size / int64(d.nodes)))
	if n >= d.nodes {
		n = d.nodes - 1
	}
	return n
}

// NodeOfCPU maps a logical CPU to its NUMA node.
func (d *Device) NodeOfCPU(cpu int) int {
	if d.nodes == 1 {
		return 0
	}
	per := d.cpus / d.nodes
	if per == 0 {
		per = 1
	}
	n := cpu / per
	if n >= d.nodes {
		n = d.nodes - 1
	}
	return n
}

func (d *Device) checkRange(off, n int64) {
	if off < 0 || n < 0 || off+n > d.size {
		panic(fmt.Sprintf("pmem: access [%d,%d) outside device of size %d", off, off+n, d.size))
	}
}

// chunkBuf is one 2MiB backing chunk. A fixed-size array type so the host
// chunk pool hands out typed pointers.
type chunkBuf [ChunkSize]byte

// chunkPool recycles 2MiB host chunks across devices. Scratch devices are
// born and die by the hundred in campaigns and bench sweeps; without the
// pool every death hands its chunks to the GC and every birth re-faults
// and re-clears fresh spans (mallocgc→memclr was >10% of sweep CPU).
// Chunks in the pool hold stale bytes: every Get site must zero whatever
// part of the chunk it does not immediately overwrite.
var chunkPool = sync.Pool{New: func() any { return new(chunkBuf) }}

// allocChunk installs a pooled chunk at index i. The chunk arrives dirty;
// the empty-slot invariant (nil slot ⇒ init bitmap all zero, maintained by
// the constructor, dropChunk and Release) means every page is marked
// uninitialized when the pointer publishes, and pages initialize lazily
// through claimWrite / readInit. Losing a CAS race returns the winner's
// chunk.
func (d *Device) allocChunk(i int64) *chunkBuf {
	c := chunkPool.Get().(*chunkBuf)
	if !d.chunks[i].CompareAndSwap(nil, c) {
		chunkPool.Put(c)
		return d.chunks[i].Load()
	}
	d.nBacked.Add(1)
	return c
}

// claimWrite marks the pages covering [in, end) of chunk i initialized
// ahead of the caller's copy. Fully covered pages only flip their bitmap
// bit (the copy overwrites every byte); a partially covered head or tail
// page on its first touch takes the stripe lock and zeroes the bytes the
// copy will not reach. Bits are set BEFORE the caller copies, so a
// concurrent claim of a neighboring range never clears bytes an in-flight
// copy already wrote: each page is zeroed at most once, while its bit is
// still clear. Marking full pages skips the identity check that guards
// the drop/realloc race — whole-chunk drops are only issued by the
// exclusive owner of the covered blocks (journal truncation, block free),
// which does not race them with writes to the same range.
func (d *Device) claimWrite(i int64, c *chunkBuf, in, end int64) {
	p0 := in >> initPageShift
	p1 := (end - 1) >> initPageShift
	fullLo, fullHi := p0, p1
	if in&(initPage-1) != 0 {
		d.initPartialPage(i, c, p0, in, end)
		fullLo = p0 + 1
	}
	if end&(initPage-1) != 0 && p1 >= fullLo {
		d.initPartialPage(i, c, p1, in, end)
		fullHi = p1 - 1
	}
	if fullLo <= fullHi {
		d.markPages(i, fullLo, fullHi)
	}
}

// initPartialPage initializes page p of chunk i for a write covering
// [in, end): the slices of the page outside the write are zeroed and the
// page's bit is set. No-op if the page is already initialized or the
// chunk was swapped out (identity check under the stripe lock).
func (d *Device) initPartialPage(i int64, c *chunkBuf, p, in, end int64) {
	w := &d.initPages[i*wordsPerChunk+p>>6]
	bit := uint64(1) << (p & 63)
	if w.Load()&bit != 0 {
		return
	}
	mu := &d.initMu[i&63]
	mu.Lock()
	if d.chunks[i].Load() == c && w.Load()&bit == 0 {
		ps := p << initPageShift
		pe := ps + initPage
		if ps < in {
			zero(c[ps:in])
		}
		if end < pe {
			zero(c[end:pe])
		}
		orBits(w, bit)
	}
	mu.Unlock()
}

// orBits sets mask bits in w (atomic.Uint64.Or needs go1.23; the module
// pins go1.22, so CAS by hand).
func orBits(w *atomic.Uint64, mask uint64) {
	for {
		old := w.Load()
		if old&mask == mask || w.CompareAndSwap(old, old|mask) {
			return
		}
	}
}

// markPages sets the init bits for pages [lo, hi] of chunk i, word-wise.
func (d *Device) markPages(i, lo, hi int64) {
	for lo <= hi {
		bitLo := lo & 63
		n := 64 - bitLo
		if rem := hi - lo + 1; rem < n {
			n = rem
		}
		mask := (^uint64(0) >> (64 - n)) << bitLo
		w := &d.initPages[i*wordsPerChunk+lo>>6]
		if w.Load()&mask != mask {
			orBits(w, mask)
		}
		lo += n
	}
}

// pagesSet reports whether every init bit in pages [p0, p1] of chunk i is
// set — the fast path for reads of fully initialized ranges.
func (d *Device) pagesSet(i, p0, p1 int64) bool {
	for p0 <= p1 {
		bitLo := p0 & 63
		n := 64 - bitLo
		if rem := p1 - p0 + 1; rem < n {
			n = rem
		}
		mask := (^uint64(0) >> (64 - n)) << bitLo
		if d.initPages[i*wordsPerChunk+p0>>6].Load()&mask != mask {
			return false
		}
		p0 += n
	}
	return true
}

// readInit copies [in, in+len(dst)) of chunk i into dst, substituting
// zeros for uninitialized pages. The chunk itself is never mutated, so
// the read path takes no locks.
func (d *Device) readInit(i int64, c *chunkBuf, dst []byte, in int64) {
	end := in + int64(len(dst))
	p0 := in >> initPageShift
	p1 := (end - 1) >> initPageShift
	if d.pagesSet(i, p0, p1) {
		copy(dst, c[in:end])
		return
	}
	for p := p0; p <= p1; p++ {
		ps := p << initPageShift
		lo := max(in, ps)
		hi := min(end, ps+initPage)
		if d.initPages[i*wordsPerChunk+p>>6].Load()&(1<<(p&63)) != 0 {
			copy(dst[lo-in:hi-in], c[lo:hi])
		} else {
			zero(dst[lo-in : hi-in])
		}
	}
}

// zeroInit physically clears the initialized pages of [in, end) in chunk
// i; uninitialized pages already read as zero and are left untouched.
func (d *Device) zeroInit(i int64, c *chunkBuf, in, end int64) {
	p0 := in >> initPageShift
	p1 := (end - 1) >> initPageShift
	for p := p0; p <= p1; p++ {
		ps := p << initPageShift
		lo := max(in, ps)
		hi := min(end, ps+initPage)
		if d.initPages[i*wordsPerChunk+p>>6].Load()&(1<<(p&63)) != 0 {
			zero(c[lo:hi])
		}
	}
}

// materialize zeroes every uninitialized page of chunk i and marks the
// whole chunk initialized, so raw chunk bytes equal device contents
// (image serialization wants the physical bytes).
func (d *Device) materialize(i int64, c *chunkBuf) {
	if d.pagesSet(i, 0, pagesPerChunk-1) {
		return
	}
	mu := &d.initMu[i&63]
	mu.Lock()
	if d.chunks[i].Load() == c {
		for w := int64(0); w < wordsPerChunk; w++ {
			word := &d.initPages[i*wordsPerChunk+w]
			for rest := ^word.Load(); rest != 0; rest &= rest - 1 {
				ps := (w<<6 + int64(bits.TrailingZeros64(rest))) << initPageShift
				zero(c[ps : ps+initPage])
			}
			word.Store(^uint64(0))
		}
	}
	mu.Unlock()
}

// zero clears b (compiles to a single memclr).
func zero(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

// dropChunk clears slot i, releasing its chunk count. The chunk itself is
// NOT returned to the pool: a concurrent reader may still hold the slice,
// and handing it to another device would let foreign bytes appear under
// that reader. The GC reclaims it; Release recycles chunks wholesale when
// the device as a whole is done. The stripe lock orders the bitmap reset
// against in-flight partial-page initialization on the dying chunk,
// restoring the empty-slot invariant (nil slot ⇒ init bitmap all zero).
func (d *Device) dropChunk(i int64) {
	mu := &d.initMu[i&63]
	mu.Lock()
	if d.chunks[i].Swap(nil) != nil {
		d.nBacked.Add(-1)
	}
	for w := int64(0); w < wordsPerChunk; w++ {
		d.initPages[i*wordsPerChunk+w].Store(0)
	}
	mu.Unlock()
}

// Release returns every backed chunk to the host chunk pool and empties
// the device. Call it when a scratch device (a campaign run's image, a
// bench point's file system) is definitely done: the device must not be
// used again, and no reads may be in flight.
func (d *Device) Release() {
	for i := range d.chunks {
		if c := d.chunks[i].Swap(nil); c != nil {
			d.nBacked.Add(-1)
			chunkPool.Put(c)
		}
		for w := 0; w < wordsPerChunk; w++ {
			d.initPages[i*wordsPerChunk+w].Store(0)
		}
	}
}

// ReadAt copies device bytes at off into buf without charging virtual time.
// Unbacked (never-written) regions read as zero.
func (d *Device) ReadAt(buf []byte, off int64) {
	d.checkRange(off, int64(len(buf)))
	for len(buf) > 0 {
		base := off / ChunkSize * ChunkSize
		in := off - base
		n := int64(len(buf))
		if in+n > ChunkSize {
			n = ChunkSize - in
		}
		if c := d.chunks[base/ChunkSize].Load(); c != nil {
			d.readInit(base/ChunkSize, c, buf[:n], in)
		} else {
			zero(buf[:n])
		}
		buf = buf[n:]
		off += n
	}
}

// WriteAt stores data at off without charging virtual time, recording the
// store in the crash trace when tracing is enabled.
func (d *Device) WriteAt(data []byte, off int64) {
	d.checkRange(off, int64(len(data)))
	d.record(off, data)
	d.mutLock()
	if d.fault == nil {
		// No fault injection armed: the store persists whole and there is
		// no poison to clear. Skipping tearStore keeps this path free of
		// its per-call segment-slice allocation.
		d.writeRaw(data, off)
	} else {
		for _, seg := range d.tearStore(off, data) {
			d.writeRaw(seg.Data, seg.Off)
			// A store re-arms every line it fully overwrites (hardware
			// clears poison on a full-line write).
			d.clearPoisonCovered(seg.Off, int64(len(seg.Data)))
		}
	}
	d.mutUnlock()
	// The observer sees the intended store, not the torn segments: a
	// replica receives what the CPU issued, while the local media may have
	// kept only part of it — exactly the asymmetry a crash can create.
	if obs := d.observer(); obs != nil {
		obs.ObserveWrite(off, data)
	}
}

// mutLock / mutUnlock bracket a content mutation with the shared side of
// the snapshot lock; NoSnapshot devices skip the two atomic round trips.
func (d *Device) mutLock() {
	if !d.noSnap {
		d.snapMu.RLock()
	}
}

func (d *Device) mutUnlock() {
	if !d.noSnap {
		d.snapMu.RUnlock()
	}
}

// writeRaw copies data into the backing store with no recording, tearing
// or poison bookkeeping.
func (d *Device) writeRaw(data []byte, off int64) {
	rest := data
	pos := off
	for len(rest) > 0 {
		base := pos / ChunkSize * ChunkSize
		in := pos - base
		n := int64(len(rest))
		if in+n > ChunkSize {
			n = ChunkSize - in
		}
		i := base / ChunkSize
		c := d.chunks[i].Load()
		if c == nil {
			c = d.allocChunk(i)
		}
		d.claimWrite(i, c, in, in+n)
		copy(c[in:in+n], rest[:n])
		rest = rest[n:]
		pos += n
	}
}

// ZeroRange zero-fills [off, off+n) without charging virtual time.
func (d *Device) ZeroRange(off, n int64) {
	d.checkRange(off, n)
	origOff, origN := off, n
	if d.isTracing() {
		d.record(off, make([]byte, n))
	}
	d.clearPoisonCovered(off, n)
	d.mutLock()
	for n > 0 {
		base := off / ChunkSize * ChunkSize
		in := off - base
		m := n
		if in+m > ChunkSize {
			m = ChunkSize - in
		}
		if in == 0 && m == ChunkSize {
			// Whole chunk: drop the backing store, reads return zero.
			d.dropChunk(base / ChunkSize)
		} else if c := d.chunks[base/ChunkSize].Load(); c != nil {
			d.zeroInit(base/ChunkSize, c, in, in+m)
		}
		off += m
		n -= m
	}
	d.mutUnlock()
	if obs := d.observer(); obs != nil {
		obs.ObserveZero(origOff, origN)
	}
}

// DiscardRange tells the device the contents of [off, off+n) no longer
// matter (the blocks were freed). Fully covered chunks release host memory.
// Contents of a discarded range are undefined (currently read back zero for
// dropped chunks, unchanged otherwise), matching freed-block semantics.
func (d *Device) DiscardRange(off, n int64) {
	d.checkRange(off, n)
	first := (off + ChunkSize - 1) / ChunkSize * ChunkSize
	last := (off + n) / ChunkSize * ChunkSize
	if first >= last {
		return
	}
	d.mutLock()
	for base := first; base < last; base += ChunkSize {
		d.dropChunk(base / ChunkSize)
	}
	d.mutUnlock()
	if obs := d.observer(); obs != nil {
		obs.ObserveDiscard(off, n)
	}
}

// HostBytes reports how much host memory currently backs the device.
func (d *Device) HostBytes() int64 {
	return d.nBacked.Load() * ChunkSize
}

// --- cost-charging accessors -------------------------------------------

func (d *Device) remote(ctx *sim.Ctx, off int64) bool {
	return d.nodes > 1 && d.NodeOf(off) != d.NodeOfCPU(ctx.CPU)
}

func (d *Device) scale(ctx *sim.Ctx, off int64, ns int64) int64 {
	if d.remote(ctx, off) {
		return int64(float64(ns) * d.model.RemoteFactor)
	}
	return ns
}

// Read copies device bytes into buf, charging read latency/bandwidth.
func (d *Device) Read(ctx *sim.Ctx, buf []byte, off int64) {
	d.ReadAt(buf, off)
	d.chargeRead(ctx, off, int64(len(buf)))
}

// Write stores data, charging write latency/bandwidth. The store is NOT
// yet durable; durability requires Flush + Fence (FS code models clwb/sfence
// explicitly).
func (d *Device) Write(ctx *sim.Ctx, data []byte, off int64) {
	d.WriteAt(data, off)
	d.chargeWrite(ctx, off, int64(len(data)))
}

// Zero zero-fills a range, charging streaming-store cost. Used for page
// zeroing in fault handlers and fallocate paths; time lands in ZeroNS.
// Hugepage-sized-or-larger zeroes get their own span — they dominate
// first-touch latency and are exactly what a trace of an aged-vs-fresh
// mount should make visible; smaller zeroes stay span-free to bound
// tracing overhead on the hot path.
func (d *Device) Zero(ctx *sim.Ctx, off, n int64) {
	if n >= ChunkSize {
		sp := ctx.StartSpan("pmem.zero")
		defer ctx.EndSpan(sp)
	}
	d.ZeroRange(off, n)
	ns := d.scale(ctx, off, int64(float64(n)*d.model.ZeroNSPerByte))
	ctx.Advance(ns)
	ctx.Counters.ZeroNS += ns
	ctx.Counters.PMWriteBytes += n
	d.TransferWrite(ctx, off, n)
}

func (d *Device) chargeRead(ctx *sim.Ctx, off, n int64) {
	if n <= 0 {
		return
	}
	ctx.Counters.PMReadBytes += n
	if n <= 4*CacheLine {
		lines := (n + CacheLine - 1) / CacheLine
		ctx.Advance(d.scale(ctx, off, d.model.ReadLat64+(lines-1)*d.model.ReadLat64/4))
		return
	}
	local := d.model.ReadLat64 + int64(float64(n)*d.model.CopyReadNSPerByte)
	ns := d.scale(ctx, off, local)
	ctx.Advance(ns)
	ctx.Counters.CopyNS += ns
	d.TransferRead(ctx, off, n)
}

func (d *Device) chargeWrite(ctx *sim.Ctx, off, n int64) {
	if n <= 0 {
		return
	}
	ctx.Counters.PMWriteBytes += n
	if n <= 4*CacheLine {
		lines := (n + CacheLine - 1) / CacheLine
		ctx.Advance(d.scale(ctx, off, d.model.WriteLat64+(lines-1)*d.model.WriteLat64/4))
		return
	}
	local := d.model.WriteLat64 + int64(float64(n)*d.model.CopyWriteNSPerByte)
	ns := d.scale(ctx, off, local)
	ctx.Advance(ns)
	ctx.Counters.CopyNS += ns
	d.TransferWrite(ctx, off, n)
}

// transferQuantumNS bounds a single port occupation: the memory bus
// interleaves concurrent transfers at cache-line granularity, so a bulk
// transfer must not monopolise a contiguous calendar interval (that would
// penalise large transfers with spurious queueing).
const transferQuantumNS = 700

func (d *Device) transfer(ctx *sim.Ctx, off int64, hold int64) {
	// All quanta book under one port-lock acquisition; bit-identical to the
	// former per-quantum Use loop (see sim.Resource.UseQuanta).
	d.port[d.NodeOf(off)].UseQuanta(ctx, hold, transferQuantumNS)
}

// TransferRead occupies the device port for an n-byte read at off without
// moving data — used by the MMU's mmap paths, which do their own byte
// movement.
func (d *Device) TransferRead(ctx *sim.Ctx, off, n int64) {
	if n <= 0 || d.readNSPerB == 0 {
		return
	}
	d.transfer(ctx, off, int64(float64(n)*d.readNSPerB))
}

// TransferWrite occupies the device port for an n-byte write at off.
func (d *Device) TransferWrite(ctx *sim.Ctx, off, n int64) {
	if n <= 0 || d.writeNSPerB == 0 {
		return
	}
	d.transfer(ctx, off, int64(float64(n)*d.writeNSPerB))
}

// Flush models clwb over the cache lines covering [off, off+n).
func (d *Device) Flush(ctx *sim.Ctx, off, n int64) {
	if n <= 0 {
		return
	}
	lines := (off+n+CacheLine-1)/CacheLine - off/CacheLine
	// clwb issues overlap; charge full latency for the first line and a
	// pipelined fraction for the rest.
	ctx.Advance(d.model.FlushLat + (lines-1)*d.model.FlushLat/8)
}

// Fence models sfence and advances the crash-trace epoch: stores recorded
// before the fence can no longer reorder with stores after it.
func (d *Device) Fence(ctx *sim.Ctx) {
	ctx.Advance(d.model.FenceLat)
	d.traceMu.Lock()
	if d.tracing {
		d.epoch++
	}
	d.traceMu.Unlock()
	d.advancePlanEpoch()
}

// --- crash tracing -------------------------------------------------------

// Store is one recorded device store, tagged with the fence epoch it was
// issued in. Stores sharing an epoch were in flight together and may
// persist in any subset/order at a crash.
type Store struct {
	Off   int64
	Data  []byte
	Epoch int
}

// StartTrace begins recording stores. The caller should snapshot the device
// first if it wants to reconstruct crash states.
func (d *Device) StartTrace() {
	d.traceMu.Lock()
	d.tracing = true
	d.tracingOn.Store(true)
	d.epoch = 0
	d.trace = nil
	d.traceMu.Unlock()
}

// StopTrace ends recording and returns the trace.
func (d *Device) StopTrace() []Store {
	d.traceMu.Lock()
	t := d.trace
	d.tracing = false
	d.tracingOn.Store(false)
	d.trace = nil
	d.traceMu.Unlock()
	return t
}

func (d *Device) isTracing() bool {
	return d.tracingOn.Load()
}

func (d *Device) record(off int64, data []byte) {
	if !d.tracingOn.Load() {
		// A store racing a StartTrace may miss the trace; it linearizes
		// before the trace began, exactly as if it had taken the lock
		// first.
		return
	}
	d.traceMu.Lock()
	if d.tracing {
		cp := make([]byte, len(data))
		copy(cp, data)
		d.trace = append(d.trace, Store{Off: off, Data: cp, Epoch: d.epoch})
	}
	d.traceMu.Unlock()
}

// Snapshot captures the device's current contents. Intended for the small
// devices used in crash tests.
func (d *Device) Snapshot() *Image {
	if d.noSnap {
		panic("pmem: Snapshot on a NoSnapshot device")
	}
	d.snapMu.Lock()
	defer d.snapMu.Unlock()
	img := &Image{size: d.size, chunks: make(map[int64][]byte, d.nBacked.Load())}
	for i := range d.chunks {
		if c := d.chunks[i].Load(); c != nil {
			cp := make([]byte, ChunkSize)
			// make returned zeroed memory; only initialized pages hold
			// content (snapMu is held exclusively, so the bitmap is
			// stable).
			for w := int64(0); w < wordsPerChunk; w++ {
				set := d.initPages[int64(i)*wordsPerChunk+w].Load()
				for ; set != 0; set &= set - 1 {
					ps := (w<<6 + int64(bits.TrailingZeros64(set&-set))) << initPageShift
					copy(cp[ps:ps+initPage], c[ps:ps+initPage])
				}
			}
			img.chunks[int64(i)*ChunkSize] = cp
		}
	}
	return img
}

// Restore overwrites the device's contents from a snapshot.
func (d *Device) Restore(img *Image) {
	if img.size != d.size {
		panic("pmem: restoring snapshot of different size")
	}
	if d.noSnap {
		panic("pmem: Restore on a NoSnapshot device")
	}
	d.snapMu.Lock()
	defer d.snapMu.Unlock()
	for i := range d.chunks {
		base := int64(i) * ChunkSize
		src, ok := img.chunks[base]
		if !ok {
			d.dropChunk(int64(i))
			continue
		}
		c := d.chunks[i].Load()
		if c == nil {
			c = d.allocChunk(int64(i))
		}
		// The full-chunk copy initializes everything.
		copy(c[:], src)
		for w := 0; w < wordsPerChunk; w++ {
			d.initPages[i*wordsPerChunk+w].Store(^uint64(0))
		}
	}
}

// Image is a point-in-time copy of device contents.
type Image struct {
	size   int64
	chunks map[int64][]byte
}

// Apply replays the given stores onto the image in order.
func (img *Image) Apply(stores []Store) {
	for _, s := range stores {
		rest := s.Data
		pos := s.Off
		for len(rest) > 0 {
			base := pos / ChunkSize * ChunkSize
			in := pos - base
			n := int64(len(rest))
			if in+n > ChunkSize {
				n = ChunkSize - in
			}
			c := img.chunks[base]
			if c == nil {
				c = make([]byte, ChunkSize)
				img.chunks[base] = c
			}
			copy(c[in:in+n], rest[:n])
			rest = rest[n:]
			pos += n
		}
	}
}

// Size returns the imaged device's capacity in bytes.
func (img *Image) Size() int64 { return img.size }

// ForEachChunk visits every backed chunk in ascending offset order. Unbacked
// regions (which read as zero) are skipped — a consumer reconstructing the
// image should start from a zeroed device. The data slice is the image's own
// backing store; callers must not retain or mutate it.
func (img *Image) ForEachChunk(f func(off int64, data []byte)) {
	offs := make([]int64, 0, len(img.chunks))
	for base := range img.chunks {
		offs = append(offs, base)
	}
	sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
	for _, base := range offs {
		f(base, img.chunks[base])
	}
}

// Clone returns a deep copy of the image.
func (img *Image) Clone() *Image {
	cp := &Image{size: img.size, chunks: make(map[int64][]byte, len(img.chunks))}
	for base, c := range img.chunks {
		b := make([]byte, ChunkSize)
		copy(b, c)
		cp.chunks[base] = b
	}
	return cp
}
