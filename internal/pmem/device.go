// Package pmem simulates a byte-addressable persistent-memory device.
//
// The device stands in for the Intel Optane DC PMM the paper evaluates on
// (repro note: we have no PM hardware and user space cannot control DAX
// hugepage mappings, so the device — like the MMU above it — is simulated).
// It provides:
//
//   - a sparse, lazily allocated backing store (2MiB host chunks) so
//     multi-GiB simulated partitions don't consume multi-GiB of host RAM;
//   - virtual-time cost accounting for loads, stores, flushes and fences,
//     with a shared bandwidth resource per NUMA node;
//   - an optional store trace with fence epochs, which the crash-consistency
//     harness uses to build crash states from real in-flight reorderings.
package pmem

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/sim"
)

const (
	// ChunkSize is the granularity of lazy host allocation.
	ChunkSize = 2 << 20
	// CacheLine is the persistence granularity (clwb unit).
	CacheLine = 64
)

// Device is a simulated persistent-memory module set. It is safe for
// concurrent use.
type Device struct {
	size  int64
	nodes int
	cpus  int
	model CostModel

	mu     sync.RWMutex
	chunks map[int64][]byte

	// snapMu makes Snapshot/Restore atomic with respect to content
	// mutations: mutators hold it shared for the duration of their byte
	// copies, Snapshot/Restore hold it exclusively. Without it a snapshot
	// taken while another goroutine streams a write (the replication
	// resync path snapshots a live primary) could capture a half-applied
	// store. Mutators release it before invoking the write observer, so an
	// observer may take locks that a snapshot caller holds.
	snapMu sync.RWMutex

	// port is the per-NUMA-node device port: reads and writes share one
	// calendar (mixed read/write traffic interferes on Optane, which is
	// what makes background defragmentation steal 25-40%% of foreground
	// bandwidth in §4's experiment).
	port        []*sim.Resource
	readNSPerB  float64
	writeNSPerB float64

	traceMu sync.Mutex
	tracing bool
	epoch   int
	trace   []Store

	// fault holds media-fault state (poison map, fault plan); lazily
	// allocated so fault-free devices pay nothing. See fault.go.
	faultOnce sync.Once
	fault     *faultState

	// obs, when set, sees every content mutation (WriteAt/ZeroRange/
	// DiscardRange) after it lands. internal/cluster taps this to stream a
	// primary's writes to replicas. Restore is exempt: it rewrites the
	// device wholesale (crash-image injection), which is not a store.
	obs atomic.Pointer[observerBox]
}

// WriteObserver sees every device content mutation. Callbacks run on the
// mutating goroutine after the store landed, outside the device locks; an
// implementation must copy data if it keeps it.
type WriteObserver interface {
	ObserveWrite(off int64, data []byte)
	ObserveZero(off, n int64)
	ObserveDiscard(off, n int64)
}

// observerBox wraps the interface so it fits an atomic.Pointer.
type observerBox struct{ obs WriteObserver }

// SetWriteObserver installs (or, with nil, removes) the device's write
// observer. Only one observer is supported; installing replaces.
func (d *Device) SetWriteObserver(obs WriteObserver) {
	if obs == nil {
		d.obs.Store(nil)
		return
	}
	d.obs.Store(&observerBox{obs: obs})
}

func (d *Device) observer() WriteObserver {
	if b := d.obs.Load(); b != nil {
		return b.obs
	}
	return nil
}

// Config controls device construction.
type Config struct {
	// Size is the device capacity in bytes. Rounded up to a chunk multiple.
	Size int64
	// Nodes is the number of NUMA nodes (default 1).
	Nodes int
	// CPUs is the number of logical CPUs that address the device; used to
	// map a Ctx's CPU to a NUMA node (default 8).
	CPUs int
	// Model overrides the cost model; zero value means DefaultModel.
	Model *CostModel
}

// New creates a device of the given size with the default model and a
// single NUMA node.
func New(size int64) *Device {
	return NewWithConfig(Config{Size: size})
}

// NewWithConfig creates a device from cfg.
func NewWithConfig(cfg Config) *Device {
	if cfg.Size <= 0 {
		panic("pmem: non-positive device size")
	}
	if cfg.Nodes <= 0 {
		cfg.Nodes = 1
	}
	if cfg.CPUs <= 0 {
		cfg.CPUs = 8
	}
	m := DefaultModel()
	if cfg.Model != nil {
		m = *cfg.Model
	}
	size := (cfg.Size + ChunkSize - 1) / ChunkSize * ChunkSize
	d := &Device{
		size:   size,
		nodes:  cfg.Nodes,
		cpus:   cfg.CPUs,
		model:  m,
		chunks: make(map[int64][]byte),
	}
	for i := 0; i < cfg.Nodes; i++ {
		d.port = append(d.port, &sim.Resource{})
	}
	if m.ReadBandwidth > 0 {
		d.readNSPerB = 1e9 / (m.ReadBandwidth / float64(cfg.Nodes))
	}
	if m.WriteBandwidth > 0 {
		d.writeNSPerB = 1e9 / (m.WriteBandwidth / float64(cfg.Nodes))
	}
	return d
}

// Size returns the device capacity in bytes.
func (d *Device) Size() int64 { return d.size }

// Nodes returns the NUMA node count.
func (d *Device) Nodes() int { return d.nodes }

// Model returns the device's cost model.
func (d *Device) Model() *CostModel { return &d.model }

// NodeOf returns the NUMA node holding byte offset off: the address space
// is striped across nodes in equal contiguous halves, as with interleaved
// namespaces per socket.
func (d *Device) NodeOf(off int64) int {
	if d.nodes == 1 {
		return 0
	}
	n := int(off / (d.size / int64(d.nodes)))
	if n >= d.nodes {
		n = d.nodes - 1
	}
	return n
}

// NodeOfCPU maps a logical CPU to its NUMA node.
func (d *Device) NodeOfCPU(cpu int) int {
	if d.nodes == 1 {
		return 0
	}
	per := d.cpus / d.nodes
	if per == 0 {
		per = 1
	}
	n := cpu / per
	if n >= d.nodes {
		n = d.nodes - 1
	}
	return n
}

func (d *Device) checkRange(off, n int64) {
	if off < 0 || n < 0 || off+n > d.size {
		panic(fmt.Sprintf("pmem: access [%d,%d) outside device of size %d", off, off+n, d.size))
	}
}

// chunk returns the host slice backing the chunk containing off, allocating
// it if needed (when alloc is true).
func (d *Device) chunk(base int64, alloc bool) []byte {
	d.mu.RLock()
	c := d.chunks[base]
	d.mu.RUnlock()
	if c != nil || !alloc {
		return c
	}
	d.mu.Lock()
	c = d.chunks[base]
	if c == nil {
		c = make([]byte, ChunkSize)
		d.chunks[base] = c
	}
	d.mu.Unlock()
	return c
}

// ReadAt copies device bytes at off into buf without charging virtual time.
// Unbacked (never-written) regions read as zero.
func (d *Device) ReadAt(buf []byte, off int64) {
	d.checkRange(off, int64(len(buf)))
	for len(buf) > 0 {
		base := off / ChunkSize * ChunkSize
		in := off - base
		n := int64(len(buf))
		if in+n > ChunkSize {
			n = ChunkSize - in
		}
		if c := d.chunk(base, false); c != nil {
			copy(buf[:n], c[in:in+n])
		} else {
			for i := int64(0); i < n; i++ {
				buf[i] = 0
			}
		}
		buf = buf[n:]
		off += n
	}
}

// WriteAt stores data at off without charging virtual time, recording the
// store in the crash trace when tracing is enabled.
func (d *Device) WriteAt(data []byte, off int64) {
	d.checkRange(off, int64(len(data)))
	d.record(off, data)
	d.snapMu.RLock()
	for _, seg := range d.tearStore(off, data) {
		d.writeRaw(seg.Data, seg.Off)
		// A store re-arms every line it fully overwrites (hardware clears
		// poison on a full-line write).
		d.clearPoisonCovered(seg.Off, int64(len(seg.Data)))
	}
	d.snapMu.RUnlock()
	// The observer sees the intended store, not the torn segments: a
	// replica receives what the CPU issued, while the local media may have
	// kept only part of it — exactly the asymmetry a crash can create.
	if obs := d.observer(); obs != nil {
		obs.ObserveWrite(off, data)
	}
}

// writeRaw copies data into the backing store with no recording, tearing
// or poison bookkeeping.
func (d *Device) writeRaw(data []byte, off int64) {
	rest := data
	pos := off
	for len(rest) > 0 {
		base := pos / ChunkSize * ChunkSize
		in := pos - base
		n := int64(len(rest))
		if in+n > ChunkSize {
			n = ChunkSize - in
		}
		c := d.chunk(base, true)
		copy(c[in:in+n], rest[:n])
		rest = rest[n:]
		pos += n
	}
}

// ZeroRange zero-fills [off, off+n) without charging virtual time.
func (d *Device) ZeroRange(off, n int64) {
	d.checkRange(off, n)
	origOff, origN := off, n
	if d.isTracing() {
		d.record(off, make([]byte, n))
	}
	d.clearPoisonCovered(off, n)
	d.snapMu.RLock()
	for n > 0 {
		base := off / ChunkSize * ChunkSize
		in := off - base
		m := n
		if in+m > ChunkSize {
			m = ChunkSize - in
		}
		if in == 0 && m == ChunkSize {
			// Whole chunk: drop the backing store, reads return zero.
			d.mu.Lock()
			delete(d.chunks, base)
			d.mu.Unlock()
		} else if c := d.chunk(base, false); c != nil {
			z := c[in : in+m]
			for i := range z {
				z[i] = 0
			}
		}
		off += m
		n -= m
	}
	d.snapMu.RUnlock()
	if obs := d.observer(); obs != nil {
		obs.ObserveZero(origOff, origN)
	}
}

// DiscardRange tells the device the contents of [off, off+n) no longer
// matter (the blocks were freed). Fully covered chunks release host memory.
// Contents of a discarded range are undefined (currently read back zero for
// dropped chunks, unchanged otherwise), matching freed-block semantics.
func (d *Device) DiscardRange(off, n int64) {
	d.checkRange(off, n)
	first := (off + ChunkSize - 1) / ChunkSize * ChunkSize
	last := (off + n) / ChunkSize * ChunkSize
	if first >= last {
		return
	}
	d.snapMu.RLock()
	d.mu.Lock()
	for base := first; base < last; base += ChunkSize {
		delete(d.chunks, base)
	}
	d.mu.Unlock()
	d.snapMu.RUnlock()
	if obs := d.observer(); obs != nil {
		obs.ObserveDiscard(off, n)
	}
}

// HostBytes reports how much host memory currently backs the device.
func (d *Device) HostBytes() int64 {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return int64(len(d.chunks)) * ChunkSize
}

// --- cost-charging accessors -------------------------------------------

func (d *Device) remote(ctx *sim.Ctx, off int64) bool {
	return d.nodes > 1 && d.NodeOf(off) != d.NodeOfCPU(ctx.CPU)
}

func (d *Device) scale(ctx *sim.Ctx, off int64, ns int64) int64 {
	if d.remote(ctx, off) {
		return int64(float64(ns) * d.model.RemoteFactor)
	}
	return ns
}

// Read copies device bytes into buf, charging read latency/bandwidth.
func (d *Device) Read(ctx *sim.Ctx, buf []byte, off int64) {
	d.ReadAt(buf, off)
	d.chargeRead(ctx, off, int64(len(buf)))
}

// Write stores data, charging write latency/bandwidth. The store is NOT
// yet durable; durability requires Flush + Fence (FS code models clwb/sfence
// explicitly).
func (d *Device) Write(ctx *sim.Ctx, data []byte, off int64) {
	d.WriteAt(data, off)
	d.chargeWrite(ctx, off, int64(len(data)))
}

// Zero zero-fills a range, charging streaming-store cost. Used for page
// zeroing in fault handlers and fallocate paths; time lands in ZeroNS.
// Hugepage-sized-or-larger zeroes get their own span — they dominate
// first-touch latency and are exactly what a trace of an aged-vs-fresh
// mount should make visible; smaller zeroes stay span-free to bound
// tracing overhead on the hot path.
func (d *Device) Zero(ctx *sim.Ctx, off, n int64) {
	if n >= ChunkSize {
		sp := ctx.StartSpan("pmem.zero")
		defer ctx.EndSpan(sp)
	}
	d.ZeroRange(off, n)
	ns := d.scale(ctx, off, int64(float64(n)*d.model.ZeroNSPerByte))
	ctx.Advance(ns)
	ctx.Counters.ZeroNS += ns
	ctx.Counters.PMWriteBytes += n
	d.TransferWrite(ctx, off, n)
}

func (d *Device) chargeRead(ctx *sim.Ctx, off, n int64) {
	if n <= 0 {
		return
	}
	ctx.Counters.PMReadBytes += n
	if n <= 4*CacheLine {
		lines := (n + CacheLine - 1) / CacheLine
		ctx.Advance(d.scale(ctx, off, d.model.ReadLat64+(lines-1)*d.model.ReadLat64/4))
		return
	}
	local := d.model.ReadLat64 + int64(float64(n)*d.model.CopyReadNSPerByte)
	ns := d.scale(ctx, off, local)
	ctx.Advance(ns)
	ctx.Counters.CopyNS += ns
	d.TransferRead(ctx, off, n)
}

func (d *Device) chargeWrite(ctx *sim.Ctx, off, n int64) {
	if n <= 0 {
		return
	}
	ctx.Counters.PMWriteBytes += n
	if n <= 4*CacheLine {
		lines := (n + CacheLine - 1) / CacheLine
		ctx.Advance(d.scale(ctx, off, d.model.WriteLat64+(lines-1)*d.model.WriteLat64/4))
		return
	}
	local := d.model.WriteLat64 + int64(float64(n)*d.model.CopyWriteNSPerByte)
	ns := d.scale(ctx, off, local)
	ctx.Advance(ns)
	ctx.Counters.CopyNS += ns
	d.TransferWrite(ctx, off, n)
}

// transferQuantumNS bounds a single port occupation: the memory bus
// interleaves concurrent transfers at cache-line granularity, so a bulk
// transfer must not monopolise a contiguous calendar interval (that would
// penalise large transfers with spurious queueing).
const transferQuantumNS = 700

func (d *Device) transfer(ctx *sim.Ctx, off int64, hold int64) {
	if hold < 1 {
		hold = 1
	}
	port := d.port[d.NodeOf(off)]
	for hold > 0 {
		q := hold
		if q > transferQuantumNS {
			q = transferQuantumNS
		}
		port.Use(ctx, q)
		hold -= q
	}
}

// TransferRead occupies the device port for an n-byte read at off without
// moving data — used by the MMU's mmap paths, which do their own byte
// movement.
func (d *Device) TransferRead(ctx *sim.Ctx, off, n int64) {
	if n <= 0 || d.readNSPerB == 0 {
		return
	}
	d.transfer(ctx, off, int64(float64(n)*d.readNSPerB))
}

// TransferWrite occupies the device port for an n-byte write at off.
func (d *Device) TransferWrite(ctx *sim.Ctx, off, n int64) {
	if n <= 0 || d.writeNSPerB == 0 {
		return
	}
	d.transfer(ctx, off, int64(float64(n)*d.writeNSPerB))
}

// Flush models clwb over the cache lines covering [off, off+n).
func (d *Device) Flush(ctx *sim.Ctx, off, n int64) {
	if n <= 0 {
		return
	}
	lines := (off+n+CacheLine-1)/CacheLine - off/CacheLine
	// clwb issues overlap; charge full latency for the first line and a
	// pipelined fraction for the rest.
	ctx.Advance(d.model.FlushLat + (lines-1)*d.model.FlushLat/8)
}

// Fence models sfence and advances the crash-trace epoch: stores recorded
// before the fence can no longer reorder with stores after it.
func (d *Device) Fence(ctx *sim.Ctx) {
	ctx.Advance(d.model.FenceLat)
	d.traceMu.Lock()
	if d.tracing {
		d.epoch++
	}
	d.traceMu.Unlock()
	d.advancePlanEpoch()
}

// --- crash tracing -------------------------------------------------------

// Store is one recorded device store, tagged with the fence epoch it was
// issued in. Stores sharing an epoch were in flight together and may
// persist in any subset/order at a crash.
type Store struct {
	Off   int64
	Data  []byte
	Epoch int
}

// StartTrace begins recording stores. The caller should snapshot the device
// first if it wants to reconstruct crash states.
func (d *Device) StartTrace() {
	d.traceMu.Lock()
	d.tracing = true
	d.epoch = 0
	d.trace = nil
	d.traceMu.Unlock()
}

// StopTrace ends recording and returns the trace.
func (d *Device) StopTrace() []Store {
	d.traceMu.Lock()
	t := d.trace
	d.tracing = false
	d.trace = nil
	d.traceMu.Unlock()
	return t
}

func (d *Device) isTracing() bool {
	d.traceMu.Lock()
	t := d.tracing
	d.traceMu.Unlock()
	return t
}

func (d *Device) record(off int64, data []byte) {
	d.traceMu.Lock()
	if d.tracing {
		cp := make([]byte, len(data))
		copy(cp, data)
		d.trace = append(d.trace, Store{Off: off, Data: cp, Epoch: d.epoch})
	}
	d.traceMu.Unlock()
}

// Snapshot captures the device's current contents. Intended for the small
// devices used in crash tests.
func (d *Device) Snapshot() *Image {
	d.snapMu.Lock()
	defer d.snapMu.Unlock()
	d.mu.RLock()
	defer d.mu.RUnlock()
	img := &Image{size: d.size, chunks: make(map[int64][]byte, len(d.chunks))}
	for base, c := range d.chunks {
		cp := make([]byte, ChunkSize)
		copy(cp, c)
		img.chunks[base] = cp
	}
	return img
}

// Restore overwrites the device's contents from a snapshot.
func (d *Device) Restore(img *Image) {
	if img.size != d.size {
		panic("pmem: restoring snapshot of different size")
	}
	d.snapMu.Lock()
	defer d.snapMu.Unlock()
	d.mu.Lock()
	d.chunks = make(map[int64][]byte, len(img.chunks))
	for base, c := range img.chunks {
		cp := make([]byte, ChunkSize)
		copy(cp, c)
		d.chunks[base] = cp
	}
	d.mu.Unlock()
}

// Image is a point-in-time copy of device contents.
type Image struct {
	size   int64
	chunks map[int64][]byte
}

// Apply replays the given stores onto the image in order.
func (img *Image) Apply(stores []Store) {
	for _, s := range stores {
		rest := s.Data
		pos := s.Off
		for len(rest) > 0 {
			base := pos / ChunkSize * ChunkSize
			in := pos - base
			n := int64(len(rest))
			if in+n > ChunkSize {
				n = ChunkSize - in
			}
			c := img.chunks[base]
			if c == nil {
				c = make([]byte, ChunkSize)
				img.chunks[base] = c
			}
			copy(c[in:in+n], rest[:n])
			rest = rest[n:]
			pos += n
		}
	}
}

// Size returns the imaged device's capacity in bytes.
func (img *Image) Size() int64 { return img.size }

// ForEachChunk visits every backed chunk in ascending offset order. Unbacked
// regions (which read as zero) are skipped — a consumer reconstructing the
// image should start from a zeroed device. The data slice is the image's own
// backing store; callers must not retain or mutate it.
func (img *Image) ForEachChunk(f func(off int64, data []byte)) {
	offs := make([]int64, 0, len(img.chunks))
	for base := range img.chunks {
		offs = append(offs, base)
	}
	sort.Slice(offs, func(i, j int) bool { return offs[i] < offs[j] })
	for _, base := range offs {
		f(base, img.chunks[base])
	}
}

// Clone returns a deep copy of the image.
func (img *Image) Clone() *Image {
	cp := &Image{size: img.size, chunks: make(map[int64][]byte, len(img.chunks))}
	for base, c := range img.chunks {
		b := make([]byte, ChunkSize)
		copy(b, c)
		cp.chunks[base] = b
	}
	return cp
}
