package pmem

import (
	"testing"

	"repro/internal/sim"
)

// Engine microbenchmarks for the device hot paths. The small-write shape
// (64B, one cache line) dominates journal traffic; the 4KiB shape is the
// block-IO unit. Both must stay allocation-free at steady state — chunk
// backing allocates once per 2MiB chunk and is then reused.

func BenchmarkDeviceWrite64(b *testing.B) {
	benchDeviceWrite(b, 64)
}

func BenchmarkDeviceWrite4K(b *testing.B) {
	benchDeviceWrite(b, 4096)
}

func benchDeviceWrite(b *testing.B, size int64) {
	d := New(64 << 20)
	defer d.Release()
	ctx := sim.NewCtx(1, 0)
	buf := make([]byte, size)
	// Pre-touch the offset window so chunk allocation is off the clock.
	d.WriteAt(buf, 0)
	d.WriteAt(buf, (64<<20)-size)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Write(ctx, buf, int64(i&1023)*size)
	}
}

func BenchmarkDeviceRead4K(b *testing.B) {
	d := New(64 << 20)
	defer d.Release()
	ctx := sim.NewCtx(1, 0)
	buf := make([]byte, 4096)
	d.WriteAt(make([]byte, 4<<20), 0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Read(ctx, buf, int64(i&1023)*4096)
	}
}

// BenchmarkChargeWrite isolates the cost-model arithmetic from the data
// copy: the delta between this and BenchmarkDeviceWrite64 is memmove +
// chunk lookup.
func BenchmarkChargeWrite(b *testing.B) {
	d := New(64 << 20)
	defer d.Release()
	ctx := sim.NewCtx(1, 0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		d.chargeWrite(ctx, int64(i&1023)*64, 64)
	}
}
