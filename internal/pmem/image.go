package pmem

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Image files let the command-line tools (mkfs, agefs, fsck) operate on
// persistent simulated devices across process runs. The format is sparse:
// only backed 2MiB chunks are stored.
//
//	header:  magic u64 | size u64 | nodes u32 | cpus u32
//	chunks:  repeated (base u64 | 2MiB raw bytes), terminated by EOF.
const imageMagic = 0x504d454d494d4731 // "PMEMIMG1"

// Save writes the device's contents to path.
func (d *Device) Save(path string) error {
	if d.noSnap {
		panic("pmem: Save on a NoSnapshot device")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	w := bufio.NewWriterSize(f, 1<<20)
	var hdr [24]byte
	binary.LittleEndian.PutUint64(hdr[0:], imageMagic)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(d.size))
	binary.LittleEndian.PutUint32(hdr[16:], uint32(d.nodes))
	binary.LittleEndian.PutUint32(hdr[20:], uint32(d.cpus))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	d.snapMu.Lock()
	defer d.snapMu.Unlock()
	for i := range d.chunks {
		c := d.chunks[i].Load()
		if c == nil {
			continue
		}
		// Materialize the logical zeros of uninitialized pages so the
		// raw chunk bytes written below are exactly the device contents.
		d.materialize(int64(i), c)
		var bb [8]byte
		binary.LittleEndian.PutUint64(bb[:], uint64(int64(i)*ChunkSize))
		if _, err := w.Write(bb[:]); err != nil {
			return err
		}
		if _, err := w.Write(c[:]); err != nil {
			return err
		}
	}
	return w.Flush()
}

// Load reads a device image from path.
func Load(path string) (*Device, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	var hdr [24]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("pmem: short image header: %w", err)
	}
	if binary.LittleEndian.Uint64(hdr[0:]) != imageMagic {
		return nil, fmt.Errorf("pmem: %s is not a device image", path)
	}
	d := NewWithConfig(Config{
		Size:  int64(binary.LittleEndian.Uint64(hdr[8:])),
		Nodes: int(binary.LittleEndian.Uint32(hdr[16:])),
		CPUs:  int(binary.LittleEndian.Uint32(hdr[20:])),
	})
	for {
		var bb [8]byte
		if _, err := io.ReadFull(r, bb[:]); err == io.EOF {
			return d, nil
		} else if err != nil {
			return nil, err
		}
		base := int64(binary.LittleEndian.Uint64(bb[:]))
		if base < 0 || base%ChunkSize != 0 || base >= d.size {
			return nil, fmt.Errorf("pmem: corrupt image: chunk base %d", base)
		}
		c := new(chunkBuf)
		if _, err := io.ReadFull(r, c[:]); err != nil {
			return nil, fmt.Errorf("pmem: truncated chunk at %d: %w", base, err)
		}
		if d.chunks[base/ChunkSize].Swap(c) == nil {
			d.nBacked.Add(1)
		}
		for w := int64(0); w < wordsPerChunk; w++ {
			d.initPages[base/ChunkSize*wordsPerChunk+w].Store(^uint64(0))
		}
	}
}
