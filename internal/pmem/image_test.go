package pmem

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

func TestImageSaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "dev.img")

	d := NewWithConfig(Config{Size: 32 << 20, Nodes: 2, CPUs: 4})
	data := make([]byte, 5000)
	for i := range data {
		data[i] = byte(i % 251)
	}
	d.WriteAt(data, 12345)
	d.WriteAt([]byte("tail"), d.Size()-8)

	if err := d.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Size() != d.Size() || got.Nodes() != 2 {
		t.Fatalf("geometry: size=%d nodes=%d", got.Size(), got.Nodes())
	}
	buf := make([]byte, len(data))
	got.ReadAt(buf, 12345)
	if !bytes.Equal(buf, data) {
		t.Fatal("data lost in round trip")
	}
	tail := make([]byte, 4)
	got.ReadAt(tail, d.Size()-8)
	if string(tail) != "tail" {
		t.Fatalf("tail = %q", tail)
	}
	// Unbacked regions stay zero (and sparse on disk).
	z := make([]byte, 100)
	got.ReadAt(z, 16<<20)
	for _, b := range z {
		if b != 0 {
			t.Fatal("phantom data in unbacked region")
		}
	}
	fi, _ := os.Stat(path)
	if fi.Size() > 3*ChunkSize+64 {
		t.Fatalf("image not sparse: %d bytes for 3 touched chunks", fi.Size())
	}
}

func TestImageLoadRejectsGarbage(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "junk.img")
	if err := os.WriteFile(path, []byte("this is not a device image at all"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("loaded garbage as an image")
	}
	// Truncated chunk payload.
	d := New(8 << 20)
	d.WriteAt([]byte{1}, 0)
	if err := d.Save(path); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(path)
	if err := os.WriteFile(path, raw[:len(raw)-100], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("loaded truncated image")
	}
}

func TestImageLoadMissing(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "nope.img")); err == nil {
		t.Fatal("loaded nonexistent file")
	}
}
