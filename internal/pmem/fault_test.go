package pmem

import (
	"errors"
	"testing"

	"repro/internal/sim"
)

func TestPoisonCheckedReads(t *testing.T) {
	d := New(1 << 20)
	d.WriteAt([]byte{1, 2, 3, 4}, 4096)
	buf := make([]byte, 4)

	if err := d.ReadAtChecked(buf, 4096); err != nil {
		t.Fatalf("healthy read: %v", err)
	}
	d.Poison(4096, 1)
	err := d.ReadAtChecked(buf, 4096)
	var me *MediaError
	if !errors.As(err, &me) {
		t.Fatalf("poisoned read: got %v, want *MediaError", err)
	}
	if me.Line != 4096 {
		t.Fatalf("poisoned line = %d, want 4096", me.Line)
	}
	// Poison is line-granular: any read touching the line fails, a read of
	// the neighbouring line does not.
	if err := d.ReadAtChecked(buf, 4096+CacheLine-2); err == nil {
		t.Fatal("read straddling into a poisoned line succeeded")
	}
	if err := d.ReadAtChecked(buf, 4096+CacheLine); err != nil {
		t.Fatalf("read of the next line: %v", err)
	}
	// The unchecked path is the trusted-internal interface and still works.
	d.ReadAt(buf, 4096)
}

func TestReadCheckedChargesTime(t *testing.T) {
	d := New(1 << 20)
	d.Poison(0, 64)
	ctx := sim.NewCtx(1, 0)
	before := ctx.Now()
	buf := make([]byte, 64)
	if err := d.ReadChecked(ctx, buf, 0); err == nil {
		t.Fatal("poisoned ReadChecked succeeded")
	}
	if ctx.Now() == before {
		t.Fatal("failed read charged no virtual time (the load was issued)")
	}
}

func TestWriteClearsPoison(t *testing.T) {
	d := New(1 << 20)
	d.Poison(128, 128) // two lines
	buf := make([]byte, 64)

	// A full-line store re-arms the line.
	d.WriteAt(make([]byte, 64), 128)
	if err := d.ReadAtChecked(buf, 128); err != nil {
		t.Fatalf("full-line overwrite did not clear poison: %v", err)
	}
	// A partial-line store does not.
	d.WriteAt([]byte{9}, 192)
	if err := d.ReadAtChecked(buf, 192); err == nil {
		t.Fatal("partial-line overwrite cleared poison")
	}
	// ZeroRange over the whole line does.
	d.ZeroRange(192, 64)
	if err := d.ReadAtChecked(buf, 192); err != nil {
		t.Fatalf("ZeroRange did not clear poison: %v", err)
	}
}

func TestClearPoisonAndPoisonedLines(t *testing.T) {
	d := New(1 << 20)
	d.Poison(0, 256)
	if got := len(d.PoisonedLines(0, 256)); got != 4 {
		t.Fatalf("PoisonedLines = %d, want 4", got)
	}
	d.ClearPoison(64, 64)
	lines := d.PoisonedLines(0, 256)
	if len(lines) != 3 || lines[0] != 0 || lines[1] != 128 {
		t.Fatalf("after ClearPoison: %v", lines)
	}
}

func TestReadRules(t *testing.T) {
	d := New(1 << 20)
	d.SetFaultPlan(&FaultPlan{
		Seed:      1,
		TornFence: -1,
		Reads: []ReadRule{
			{Start: 0, End: 4096, Nth: 2},                      // persistent: poisons
			{Start: 8192, End: 12288, Nth: 1, Transient: true}, // transient: retry works
		},
	})
	buf := make([]byte, 64)
	if err := d.ReadAtChecked(buf, 0); err != nil {
		t.Fatalf("1st read should pass: %v", err)
	}
	if err := d.ReadAtChecked(buf, 0); err == nil {
		t.Fatal("2nd read should trip the Nth=2 rule")
	}
	// The persistent rule poisoned the lines: every later read fails too.
	if err := d.ReadAtChecked(buf, 0); err == nil {
		t.Fatal("persistent rule did not poison the line")
	}
	// Transient rule: first read fails, retry succeeds.
	if err := d.ReadAtChecked(buf, 8192); err == nil {
		t.Fatal("transient rule did not fire")
	}
	if err := d.ReadAtChecked(buf, 8192); err != nil {
		t.Fatalf("transient error persisted: %v", err)
	}
	pr, _ := d.FaultStats()
	if pr != 3 {
		t.Fatalf("poisonedReads = %d, want 3", pr)
	}
}

func TestCheckRange(t *testing.T) {
	d := New(4096)
	size := d.Size() // rounded up to a chunk multiple
	if err := d.CheckRange(0, size); err != nil {
		t.Fatalf("in-range: %v", err)
	}
	var re *RangeError
	if err := d.CheckRange(size-100, 200); !errors.As(err, &re) {
		t.Fatalf("out of range: got %v, want *RangeError", err)
	}
	if err := d.CheckRange(-1, 10); err == nil {
		t.Fatal("negative offset passed")
	}
	// CheckRange is range-only: poison does not affect it (extent walks use
	// it to validate pointers, not data health).
	d.Poison(0, 64)
	if err := d.CheckRange(0, 64); err != nil {
		t.Fatalf("CheckRange tripped on poison: %v", err)
	}
}

func TestTornWritesLive(t *testing.T) {
	d := New(1 << 20)
	ctx := sim.NewCtx(1, 0)
	// Epoch 0 is torn with keep=0: every line of every store before the
	// first fence is dropped.
	d.SetFaultPlan(&FaultPlan{Seed: 7, TornFence: 0, TornKeep: 0})
	data := make([]byte, 256)
	for i := range data {
		data[i] = 0xAB
	}
	d.Write(ctx, data, 0)
	d.Fence(ctx)
	// After the fence the torn epoch is over: stores persist again.
	d.Write(ctx, data, 4096)

	buf := make([]byte, 256)
	d.ReadAt(buf, 0)
	for i, b := range buf {
		if b != 0 {
			t.Fatalf("torn store persisted byte %d = %#x", i, b)
		}
	}
	d.ReadAt(buf, 4096)
	if buf[0] != 0xAB {
		t.Fatal("post-fence store was dropped")
	}
	if _, torn := d.FaultStats(); torn != 4 {
		t.Fatalf("tornLines = %d, want 4", torn)
	}
}

func TestTornWritesDeterministic(t *testing.T) {
	run := func() []byte {
		d := New(1 << 20)
		ctx := sim.NewCtx(1, 0)
		d.SetFaultPlan(&FaultPlan{Seed: 42, TornFence: 0, TornKeep: 0.5})
		data := make([]byte, 1024)
		for i := range data {
			data[i] = byte(i)
		}
		d.Write(ctx, data, 0)
		out := make([]byte, 1024)
		d.ReadAt(out, 0)
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("torn writes not deterministic at byte %d", i)
		}
	}
	partial := false
	for _, x := range a {
		if x != 0 {
			partial = true
		}
	}
	if !partial {
		t.Fatal("keep=0.5 dropped everything (seed pathological?)")
	}
}

func TestTearStoresOffline(t *testing.T) {
	stores := []Store{
		{Off: 0, Data: make([]byte, 256), Epoch: 0},
		{Off: 4096, Data: make([]byte, 256), Epoch: 1},
	}
	for i := range stores[0].Data {
		stores[0].Data[i] = 1
	}
	for i := range stores[1].Data {
		stores[1].Data[i] = 2
	}
	rng := sim.NewRand(5)
	out := TearStores(stores, 1, 0, rng)
	// Epoch 0 passes through untouched; epoch 1 is fully dropped.
	if len(out) != 1 || out[0].Off != 0 || len(out[0].Data) != 256 {
		t.Fatalf("keep=0: %+v", out)
	}
	rng = sim.NewRand(5)
	out = TearStores(stores, 1, 1, rng)
	if len(out) != 2 {
		t.Fatalf("keep=1: %+v", out)
	}
	// keep=0.5: surviving segments must be line-aligned fragments of the
	// original store, and both epochs' bytes must re-apply cleanly.
	rng = sim.NewRand(5)
	out = TearStores(stores, 1, 0.5, rng)
	d := New(1 << 20)
	img := d.Snapshot()
	img.Apply(out)
	scratch := New(1 << 20)
	scratch.Restore(img)
	buf := make([]byte, 256)
	scratch.ReadAt(buf, 0)
	for i, b := range buf {
		if b != 1 {
			t.Fatalf("untorn epoch damaged at byte %d = %d", i, b)
		}
	}
	scratch.ReadAt(buf, 4096)
	for i, b := range buf {
		if b != 0 && b != 2 {
			t.Fatalf("torn epoch has invented byte %d = %d", i, b)
		}
		if i%CacheLine == 0 && i > 0 && b != buf[i-1] && buf[i-1] != b {
			continue // line boundary: persistence may flip
		}
	}
}
