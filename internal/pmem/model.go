package pmem

// CostModel holds the latency/bandwidth parameters of the simulated
// persistent-memory device and the memory subsystem around it. Defaults are
// calibrated to the numbers the paper reports for Intel Optane DC PMM
// (§2.1, §2.2): 64-byte accesses cost 100–200ns, page faults cost 1–2µs,
// PM read bandwidth is ~3× write bandwidth, and a single thread streams
// writes at a few GB/s.
//
// The model splits every bulk transfer into two components:
//
//   - a local, per-thread cost (CPU issuing the copy) so a single thread
//     tops out at a realistic per-core rate, and
//   - an occupation of the device's shared bandwidth resource so that many
//     threads together saturate at the device's aggregate rate.
type CostModel struct {
	// ReadLat64 is the latency of one 64B random read from PM (ns).
	ReadLat64 int64
	// WriteLat64 is the latency of one 64B write reaching the PM write
	// queue (ns).
	WriteLat64 int64
	// CopyWriteNSPerByte is the per-thread cost of streaming data to PM.
	// 0.25 ns/B ≈ 4 GB/s single-thread write (matches Figure 1's axis).
	CopyWriteNSPerByte float64
	// CopyReadNSPerByte is the per-thread cost of streaming data from PM.
	CopyReadNSPerByte float64
	// ReadBandwidth / WriteBandwidth are the device's aggregate rates in
	// bytes per second (paper: write bw ≈ 1/3 read bw).
	ReadBandwidth  float64
	WriteBandwidth float64
	// FlushLat is the cost of a clwb of one cache line (ns).
	FlushLat int64
	// FenceLat is the cost of an sfence (ns).
	FenceLat int64
	// RemoteFactor multiplies access costs that cross NUMA nodes.
	RemoteFactor float64

	// Memory-subsystem parameters, consumed by internal/mmu.

	// BaseFaultNS is the kernel overhead of handling one 4KiB page fault,
	// excluding any file-system work such as allocation or zeroing.
	BaseFaultNS int64
	// HugeFaultNS is the kernel overhead of handling one 2MiB hugepage fault.
	HugeFaultNS int64
	// PageWalkNS is the cost of a TLB miss page-table walk when the walked
	// entries are cache-resident.
	PageWalkNS int64
	// PageWalkMemNS is the extra cost when walk entries must come from DRAM.
	PageWalkMemNS int64
	// LLCHitNS is the latency of an access served by the last-level cache.
	LLCHitNS int64
	// DRAMLat is the latency of a DRAM access (page-table reads).
	DRAMLat int64
	// ZeroNSPerByte is the cost of zero-filling freshly allocated PM.
	ZeroNSPerByte float64

	// TLB geometry: entry counts for 4KiB and 2MiB translations. Modern
	// second-level TLBs share ~1536 entries; hugepage entries each cover
	// 512× the reach.
	TLBEntries4K int
	TLBEntries2M int
	// LLCBytes is the modelled last-level cache capacity. Scaled down from
	// the test machine's ~38MiB in proportion to the scaled working sets.
	LLCBytes int64
	// LLCWays is the cache associativity.
	LLCWays int

	// SyscallNS is the fixed cost of trapping into the kernel and back,
	// plus VFS dispatch (§2.1: syscalls spend 11× more time in the kernel).
	SyscallNS int64
}

// DefaultModel returns the Optane-calibrated cost model used by every
// experiment unless a test overrides specific fields.
func DefaultModel() CostModel {
	return CostModel{
		ReadLat64:          300,
		WriteLat64:         100,
		CopyWriteNSPerByte: 0.25,
		CopyReadNSPerByte:  0.12,
		ReadBandwidth:      10e9,
		WriteBandwidth:     4e9,
		FlushLat:           40,
		FenceLat:           30,
		RemoteFactor:       2.0,
		BaseFaultNS:        1500,
		HugeFaultNS:        2600,
		PageWalkNS:         70,
		PageWalkMemNS:      220,
		LLCHitNS:           42,
		DRAMLat:            85,
		ZeroNSPerByte:      0.2,
		TLBEntries4K:       1536,
		TLBEntries2M:       1536,
		LLCBytes:           8 << 20,
		LLCWays:            16,
		SyscallNS:          600,
	}
}
