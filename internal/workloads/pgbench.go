package workloads

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/vfs"
)

// PgbenchConfig sizes the TPC-B-style read-write workload §5.5 runs
// against PostgreSQL (32 threads, 60GB database in the paper; scaled here).
type PgbenchConfig struct {
	Threads int
	// DatabaseBytes is the table heap size.
	DatabaseBytes int64
	// TxPerThread is the number of TPC-B transactions per thread.
	TxPerThread int
	Seed        uint64
}

func (c *PgbenchConfig) defaults() {
	if c.Threads == 0 {
		c.Threads = 8 // scaled from 32
	}
	if c.DatabaseBytes == 0 {
		c.DatabaseBytes = 256 << 20
	}
	if c.TxPerThread == 0 {
		c.TxPerThread = 300
	}
}

// PgbenchResult reports transactions per virtual second.
type PgbenchResult struct {
	Tx        int64
	VirtualNS int64
	// WaitNS is the average per-thread virtual time lost to contention.
	WaitNS int64
}

// TPS returns transactions per virtual second.
func (r PgbenchResult) TPS() float64 {
	if r.VirtualNS == 0 {
		return 0
	}
	return float64(r.Tx) / (float64(r.VirtualNS) / 1e9)
}

const pgPage = 8192

// Pgbench runs the read-write TPC-B-like mix: each transaction reads three
// random heap pages, overwrites one in place, appends a WAL record and
// fsyncs the WAL. The in-place heap overwrite is the operation that
// separates journaling (WineFS) from log-structuring (NOVA) in Figure 9:
// "NOVA has to delete per-inode log entries, add new entries ... WineFS
// only modifies the inode in a journal transaction."
func Pgbench(fs vfs.FS, cfg PgbenchConfig) (PgbenchResult, error) {
	cfg.defaults()
	setup := sim.NewCtx(1000, 0)
	if err := fs.Mkdir(setup, "/pg"); err != nil && err != vfs.ErrExist {
		return PgbenchResult{}, err
	}
	// PostgreSQL stores each relation in 1GiB segment files; the workload's
	// page accesses therefore spread across several inodes rather than
	// serialising on one file's VFS lock. We scale to 8 segments.
	const segments = 8
	segBytes := cfg.DatabaseBytes / segments
	heapSegs := make([]vfs.File, segments)
	buf := make([]byte, 1<<20)
	for s := 0; s < segments; s++ {
		seg, err := fs.Create(setup, fmt.Sprintf("/pg/heap.%d", s))
		if err != nil {
			return PgbenchResult{}, err
		}
		if err := seg.Fallocate(setup, 0, segBytes); err != nil {
			return PgbenchResult{}, err
		}
		// Initialise (sequential write pass, like pgbench -i).
		for off := int64(0); off < segBytes; off += int64(len(buf)) {
			if _, err := seg.WriteAt(setup, buf, off); err != nil {
				return PgbenchResult{}, err
			}
		}
		heapSegs[s] = seg
	}
	pagesPerSeg := segBytes / pgPage

	type res struct {
		ns   int64
		wait int64
		err  error
	}
	done := make(chan res, cfg.Threads)
	pages := pagesPerSeg * segments
	setupEnd := setup.Now()
	for th := 0; th < cfg.Threads; th++ {
		go func(th int) {
			ctx := sim.NewCtx(3000+th, th)
			ctx.AdvanceTo(setupEnd)
			rng := sim.NewRand(cfg.Seed + uint64(th)*31 + 7)
			wal, err := fs.Create(ctx, fmt.Sprintf("/pg/wal%d", th))
			if err != nil {
				done <- res{0, 0, err}
				return
			}
			page := make([]byte, pgPage)
			walRec := make([]byte, 180)
			pick := func() (vfs.File, int64) {
				p := rng.Int63n(pages)
				return heapSegs[p/pagesPerSeg], (p % pagesPerSeg) * pgPage
			}
			for tx := 0; tx < cfg.TxPerThread; tx++ {
				for r := 0; r < 3; r++ {
					seg, off := pick()
					if _, err := seg.ReadAt(ctx, page, off); err != nil {
						done <- res{0, 0, err}
						return
					}
				}
				seg, off := pick()
				if _, err := seg.WriteAt(ctx, page, off); err != nil {
					done <- res{0, 0, err}
					return
				}
				if _, err := wal.Append(ctx, walRec); err != nil {
					done <- res{0, 0, err}
					return
				}
				if err := wal.Fsync(ctx); err != nil {
					done <- res{0, 0, err}
					return
				}
			}
			done <- res{ctx.Now(), ctx.Counters.LockWaitNS, nil}
		}(th)
	}
	var maxNS, totalWait int64
	for i := 0; i < cfg.Threads; i++ {
		r := <-done
		if r.err != nil {
			return PgbenchResult{}, r.err
		}
		if r.ns > maxNS {
			maxNS = r.ns
		}
		totalWait += r.wait
	}
	return PgbenchResult{Tx: int64(cfg.Threads * cfg.TxPerThread), VirtualNS: maxNS - setupEnd,
		WaitNS: totalWait / int64(cfg.Threads)}, nil
}
