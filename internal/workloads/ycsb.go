// Package workloads implements the benchmark drivers the paper evaluates
// with (Table 1): YCSB, db_bench-style KV workloads, the four Filebench
// personalities, a pgbench TPC-B-style driver, and a WiredTiger-style
// fill/read driver. Drivers are independent of the system under test: KV
// workloads run over the KV interface, file workloads over vfs.FS.
package workloads

import (
	"fmt"

	"repro/internal/sim"
)

// KV is the key-value interface the YCSB and db_bench drivers target.
type KV interface {
	Put(ctx *sim.Ctx, key uint64, val []byte) error
	Get(ctx *sim.Ctx, key uint64, buf []byte) (int, error)
}

// YCSBKind selects a YCSB workload mix.
type YCSBKind int

// The standard YCSB workloads.
const (
	YCSBLoad YCSBKind = iota // 100% insert
	YCSBA                    // 50% read / 50% update, zipfian
	YCSBB                    // 95% read / 5% update, zipfian
	YCSBC                    // 100% read, zipfian
	YCSBD                    // 95% read-latest / 5% insert
	YCSBE                    // 95% scan / 5% insert (scan ≈ run of gets)
	YCSBF                    // 50% read / 50% read-modify-write
)

func (k YCSBKind) String() string {
	return [...]string{"Load", "A", "B", "C", "D", "E", "F"}[k]
}

// AllYCSB lists the workloads Figure 7(a) reports.
func AllYCSB() []YCSBKind {
	return []YCSBKind{YCSBLoad, YCSBA, YCSBB, YCSBC, YCSBD, YCSBE, YCSBF}
}

// YCSBConfig sizes a run.
type YCSBConfig struct {
	// Records in the loaded dataset.
	Records int64
	// Operations in the run phase.
	Operations int64
	// ValueSize per record (YCSB default 1KiB across 10 fields).
	ValueSize int
	// Zipf skew (default 0.99).
	Theta float64
	Seed  uint64
}

func (c *YCSBConfig) defaults() {
	if c.Records == 0 {
		c.Records = 100000
	}
	if c.Operations == 0 {
		c.Operations = c.Records
	}
	if c.ValueSize == 0 {
		c.ValueSize = 1024
	}
	if c.Theta == 0 {
		c.Theta = 0.99
	}
}

// YCSBResult reports a run.
type YCSBResult struct {
	Kind YCSBKind
	Ops  int64
	// VirtualNS is the virtual time the run phase took.
	VirtualNS int64
}

// Throughput returns operations per virtual second.
func (r YCSBResult) Throughput() float64 {
	if r.VirtualNS == 0 {
		return 0
	}
	return float64(r.Ops) / (float64(r.VirtualNS) / 1e9)
}

// YCSBLoadPhase inserts the dataset (workload "Load").
func YCSBLoadPhase(ctx *sim.Ctx, kv KV, cfg YCSBConfig) error {
	cfg.defaults()
	val := make([]byte, cfg.ValueSize)
	for i := int64(0); i < cfg.Records; i++ {
		val[0] = byte(i)
		if err := kv.Put(ctx, uint64(i), val); err != nil {
			return fmt.Errorf("ycsb load at %d: %w", i, err)
		}
	}
	return nil
}

// YCSBRun executes the run phase of the given workload against a loaded
// store and returns throughput in virtual time.
func YCSBRun(ctx *sim.Ctx, kv KV, kind YCSBKind, cfg YCSBConfig) (YCSBResult, error) {
	cfg.defaults()
	if kind == YCSBLoad {
		start := ctx.Now()
		if err := YCSBLoadPhase(ctx, kv, cfg); err != nil {
			return YCSBResult{}, err
		}
		return YCSBResult{Kind: kind, Ops: cfg.Records, VirtualNS: ctx.Now() - start}, nil
	}
	rng := sim.NewRand(cfg.Seed + uint64(kind)*131)
	zipf := sim.NewZipf(rng, cfg.Records, cfg.Theta)
	val := make([]byte, cfg.ValueSize)
	buf := make([]byte, cfg.ValueSize)
	inserted := cfg.Records
	start := ctx.Now()
	for op := int64(0); op < cfg.Operations; op++ {
		switch kind {
		case YCSBA:
			if rng.Intn(2) == 0 {
				kv.Get(ctx, uint64(zipf.Next()), buf)
			} else if err := kv.Put(ctx, uint64(zipf.Next()), val); err != nil {
				return YCSBResult{}, err
			}
		case YCSBB:
			if rng.Intn(100) < 95 {
				kv.Get(ctx, uint64(zipf.Next()), buf)
			} else if err := kv.Put(ctx, uint64(zipf.Next()), val); err != nil {
				return YCSBResult{}, err
			}
		case YCSBC:
			kv.Get(ctx, uint64(zipf.Next()), buf)
		case YCSBD:
			if rng.Intn(100) < 95 {
				// Read-latest: recent inserts.
				back := int64(rng.Intn(1000))
				k := inserted - 1 - back
				if k < 0 {
					k = 0
				}
				kv.Get(ctx, uint64(k), buf)
			} else {
				if err := kv.Put(ctx, uint64(inserted), val); err != nil {
					return YCSBResult{}, err
				}
				inserted++
			}
		case YCSBE:
			if rng.Intn(100) < 95 {
				// Scan: a short run of sequential reads.
				base := zipf.Next()
				n := 1 + rng.Intn(20)
				for s := 0; s < n; s++ {
					k := base + int64(s)
					if k >= inserted {
						break
					}
					kv.Get(ctx, uint64(k), buf)
				}
			} else {
				if err := kv.Put(ctx, uint64(inserted), val); err != nil {
					return YCSBResult{}, err
				}
				inserted++
			}
		case YCSBF:
			k := uint64(zipf.Next())
			kv.Get(ctx, k, buf)
			if rng.Intn(2) == 0 {
				if err := kv.Put(ctx, k, val); err != nil {
					return YCSBResult{}, err
				}
			}
		}
	}
	return YCSBResult{Kind: kind, Ops: cfg.Operations, VirtualNS: ctx.Now() - start}, nil
}

// --- db_bench-style drivers -------------------------------------------------

// DBBenchKind selects a db_bench workload.
type DBBenchKind int

// The db_bench workloads the paper uses (LMDB fillseqbatch, PmemKV
// fillseq, WiredTiger fillrandom/readrandom).
const (
	FillSeq DBBenchKind = iota
	FillSeqBatch
	FillRandom
	ReadRandom
)

func (k DBBenchKind) String() string {
	return [...]string{"fillseq", "fillseqbatch", "fillrandom", "readrandom"}[k]
}

// Batcher is implemented by stores with a batched insert path (LMDB).
type Batcher interface {
	PutBatch(ctx *sim.Ctx, keys []uint64, vals [][]byte) error
}

// DBBenchConfig sizes a run.
type DBBenchConfig struct {
	Records   int64
	ValueSize int
	BatchSize int
	Seed      uint64
}

func (c *DBBenchConfig) defaults() {
	if c.Records == 0 {
		c.Records = 100000
	}
	if c.ValueSize == 0 {
		c.ValueSize = 1024
	}
	if c.BatchSize == 0 {
		c.BatchSize = 100
	}
}

// DBBench runs one db_bench workload and returns (ops, virtual ns).
func DBBench(ctx *sim.Ctx, kv KV, kind DBBenchKind, cfg DBBenchConfig) (int64, int64, error) {
	cfg.defaults()
	rng := sim.NewRand(cfg.Seed + 17)
	val := make([]byte, cfg.ValueSize)
	buf := make([]byte, cfg.ValueSize)
	start := ctx.Now()
	switch kind {
	case FillSeq:
		for i := int64(0); i < cfg.Records; i++ {
			if err := kv.Put(ctx, uint64(i), val); err != nil {
				return 0, 0, err
			}
		}
	case FillSeqBatch:
		b, ok := kv.(Batcher)
		keys := make([]uint64, 0, cfg.BatchSize)
		vals := make([][]byte, 0, cfg.BatchSize)
		for i := int64(0); i < cfg.Records; i++ {
			keys = append(keys, uint64(i))
			vals = append(vals, val)
			if len(keys) == cfg.BatchSize || i == cfg.Records-1 {
				if ok {
					if err := b.PutBatch(ctx, keys, vals); err != nil {
						return 0, 0, err
					}
				} else {
					for j, k := range keys {
						if err := kv.Put(ctx, k, vals[j]); err != nil {
							return 0, 0, err
						}
					}
				}
				keys = keys[:0]
				vals = vals[:0]
			}
		}
	case FillRandom:
		for i := int64(0); i < cfg.Records; i++ {
			if err := kv.Put(ctx, rng.Uint64()%uint64(cfg.Records*4), val); err != nil {
				return 0, 0, err
			}
		}
	case ReadRandom:
		for i := int64(0); i < cfg.Records; i++ {
			kv.Get(ctx, uint64(rng.Int63n(cfg.Records)), buf)
		}
	}
	return cfg.Records, ctx.Now() - start, nil
}
