package workloads

import (
	"fmt"

	"repro/internal/sim"
	"repro/internal/vfs"
)

// Personality selects a Filebench macro-benchmark (Table 1).
type Personality int

// The four personalities §5.5 evaluates.
const (
	Varmail Personality = iota
	Fileserver
	Webserver
	Webproxy
)

func (p Personality) String() string {
	return [...]string{"varmail", "fileserver", "webserver", "webproxy"}[p]
}

// AllPersonalities lists the Figure 9 set.
func AllPersonalities() []Personality {
	return []Personality{Varmail, Fileserver, Webserver, Webproxy}
}

// FilebenchConfig sizes a run. Thread counts follow Table 1, file counts
// are scaled to the simulated partition.
type FilebenchConfig struct {
	Threads int
	Files   int
	// OpsPerThread is the number of personality iterations each thread
	// performs during the measured phase.
	OpsPerThread int
	// MeanFileKB is the mean file size (default per personality).
	MeanFileKB int
	Seed       uint64
}

func (c *FilebenchConfig) defaults(p Personality) {
	if c.Threads == 0 {
		switch p {
		case Varmail:
			c.Threads = 16
		case Fileserver:
			c.Threads = 8 // scaled from 50
		default:
			c.Threads = 8 // scaled from 100
		}
	}
	if c.Files == 0 {
		c.Files = 2000
	}
	if c.OpsPerThread == 0 {
		c.OpsPerThread = 200
	}
	if c.MeanFileKB == 0 {
		switch p {
		case Varmail:
			c.MeanFileKB = 16
		case Fileserver:
			c.MeanFileKB = 128
		default:
			c.MeanFileKB = 64
		}
	}
}

// FilebenchResult reports a run.
type FilebenchResult struct {
	Personality Personality
	Ops         int64
	VirtualNS   int64 // slowest thread
}

// Throughput returns personality iterations per virtual second.
func (r FilebenchResult) Throughput() float64 {
	if r.VirtualNS == 0 {
		return 0
	}
	return float64(r.Ops) / (float64(r.VirtualNS) / 1e9)
}

// Filebench prepares the fileset and runs the personality with the
// configured thread count, each thread on its own simulated CPU.
func Filebench(fs vfs.FS, p Personality, cfg FilebenchConfig) (FilebenchResult, error) {
	cfg.defaults(p)
	setup := sim.NewCtx(1000, 0)
	if err := fs.Mkdir(setup, "/fb"); err != nil && err != vfs.ErrExist {
		return FilebenchResult{}, err
	}
	if err := fs.Mkdir(setup, "/fb/logs"); err != nil && err != vfs.ErrExist {
		return FilebenchResult{}, err
	}
	rng := sim.NewRand(cfg.Seed + 1)
	// Pre-create the fileset.
	for i := 0; i < cfg.Files; i++ {
		f, err := fs.Create(setup, fbPath(i))
		if err != nil {
			return FilebenchResult{}, err
		}
		size := fbSize(rng, cfg.MeanFileKB)
		if _, err := f.Append(setup, make([]byte, size)); err != nil {
			return FilebenchResult{}, err
		}
	}

	type res struct {
		ns  int64
		err error
	}
	done := make(chan res, cfg.Threads)
	setupEnd := setup.Now()
	for th := 0; th < cfg.Threads; th++ {
		go func(th int) {
			ctx := sim.NewCtx(2000+th, th)
			ctx.AdvanceTo(setupEnd)
			err := fbThread(ctx, fs, p, cfg, th)
			done <- res{ctx.Now(), err}
		}(th)
	}
	var maxNS int64
	for i := 0; i < cfg.Threads; i++ {
		r := <-done
		if r.err != nil {
			return FilebenchResult{}, r.err
		}
		if r.ns > maxNS {
			maxNS = r.ns
		}
	}
	return FilebenchResult{
		Personality: p,
		Ops:         int64(cfg.Threads * cfg.OpsPerThread),
		VirtualNS:   maxNS - setupEnd,
	}, nil
}

func fbPath(i int) string { return fmt.Sprintf("/fb/f%06d", i) }

// fbSize draws a file size around the mean (uniform half-to-double).
func fbSize(rng *sim.Rand, meanKB int) int64 {
	lo := int64(meanKB) << 9 // mean/2 KB in bytes
	return lo + rng.Int63n(3*lo)
}

func fbThread(ctx *sim.Ctx, fs vfs.FS, p Personality, cfg FilebenchConfig, th int) error {
	rng := sim.NewRand(cfg.Seed + uint64(th)*997 + 13)
	pick := func() string { return fbPath(rng.Intn(cfg.Files)) }
	readWhole := func(path string) error {
		f, err := fs.Open(ctx, path)
		if err != nil {
			return nil // deleted by another thread: fine
		}
		buf := make([]byte, 64<<10)
		var off int64
		for {
			n, err := f.ReadAt(ctx, buf, off)
			if err != nil || n == 0 {
				return err
			}
			off += int64(n)
		}
	}
	logFile, err := fs.Create(ctx, fmt.Sprintf("/fb/logs/log%d", th))
	if err != nil {
		return err
	}
	next := cfg.Files + th*cfg.OpsPerThread*2 // private namespace for creates

	for op := 0; op < cfg.OpsPerThread; op++ {
		switch p {
		case Varmail:
			// delete; create+append+fsync; read+append+fsync; read.
			fs.Unlink(ctx, pick())
			path := fbPath(next)
			next++
			f, err := fs.Create(ctx, path)
			if err != nil {
				return err
			}
			if _, err := f.Append(ctx, make([]byte, fbSize(rng, cfg.MeanFileKB))); err != nil {
				return err
			}
			if err := f.Fsync(ctx); err != nil {
				return err
			}
			if err := readWhole(pick()); err != nil {
				return err
			}
			if g, err := fs.Open(ctx, pick()); err == nil {
				g.Append(ctx, make([]byte, 8<<10))
				g.Fsync(ctx)
			}
			readWhole(pick())
		case Fileserver:
			// create+write whole; open+append; read whole; delete.
			path := fbPath(next)
			next++
			f, err := fs.Create(ctx, path)
			if err != nil {
				return err
			}
			if _, err := f.Append(ctx, make([]byte, fbSize(rng, cfg.MeanFileKB))); err != nil {
				return err
			}
			if g, err := fs.Open(ctx, pick()); err == nil {
				g.Append(ctx, make([]byte, 16<<10))
			}
			readWhole(pick())
			fs.Unlink(ctx, path)
		case Webserver:
			// read 10 files; append a log record.
			for i := 0; i < 10; i++ {
				readWhole(pick())
			}
			if _, err := logFile.Append(ctx, make([]byte, 16<<10)); err != nil {
				return err
			}
		case Webproxy:
			// delete; create+append; read 5 files; log append.
			fs.Unlink(ctx, pick())
			path := fbPath(next)
			next++
			f, err := fs.Create(ctx, path)
			if err != nil {
				return err
			}
			if _, err := f.Append(ctx, make([]byte, fbSize(rng, cfg.MeanFileKB))); err != nil {
				return err
			}
			for i := 0; i < 5; i++ {
				readWhole(pick())
			}
			if _, err := logFile.Append(ctx, make([]byte, 16<<10)); err != nil {
				return err
			}
		}
	}
	return nil
}
