package workloads

import (
	"fmt"

	"repro/internal/perf"
	"repro/internal/sim"
	"repro/internal/vfs"
	"repro/internal/winefs"
)

// TieredSweep is the winebench -tier workload: size a working set as a
// multiple of the PM tier's data capacity, write it (allocations past the
// high-water mark spill to the slow tier instead of failing), then hammer
// it with a 90/10 hotspot read/write mix while periodic migration passes
// demote cold extents and promote reheated ones. Swept over working-set
// fractions {0.5, 1, 1.5, 2}x PM it produces the graceful-degradation
// curve the tiering policy is judged by: at <=1x everything stays in PM
// and throughput matches the untiered control; past 1x the skew keeps
// the hot set PM-resident, so throughput degrades with the miss ratio
// rather than collapsing to slow-device speed.

// TieredSweepConfig sizes one sweep. The same config runs against a
// tiered mount and the all-in-PM control (a big untiered device), so the
// working set is absolute bytes, not a fraction — the caller derives it
// from the tiered mount's PM capacity once and reuses it for the control.
type TieredSweepConfig struct {
	// WorkingSetBytes is the total data the sweep touches (rounded up to
	// a whole number of files).
	WorkingSetBytes int64
	// FileBytes is the per-file size (default 2MiB, one hugepage — the
	// migration unit).
	FileBytes int64
	// Ops is the number of accesses in the measured sweep (default 20000).
	Ops int
	// WarmupOps run before measurement starts (default Ops): heat
	// accumulates and the migration passes converge placement — the
	// one-time un-scrambling of the setup-time layout is several thousand
	// blocks of copies — so the sweep measures the policy's steady state
	// rather than the convergence transient.
	WarmupOps int
	// OpSize is bytes per access (default 4096, the slow tier's page).
	OpSize int
	// ReadFrac is the fraction of ops that read (default 0.9).
	ReadFrac float64
	// HotDataFrac / HotAccessFrac shape the hotspot skew: HotAccessFrac
	// of the accesses go to a uniformly chosen slot inside the hottest
	// HotDataFrac of the working set (defaults 0.9 to 0.1 — the 90/10
	// rule tiering studies are built on). The rest spread uniformly over
	// the cold remainder.
	HotDataFrac   float64
	HotAccessFrac float64
	// PassEvery runs a tier-migration pass every N ops on tiered mounts
	// (default 2000; 0 disables).
	PassEvery int
	// PassBudget is MaxMigrateBlocks per pass (default 4096).
	PassBudget int64
	Seed       uint64
}

func (c TieredSweepConfig) withDefaults() TieredSweepConfig {
	if c.FileBytes <= 0 {
		c.FileBytes = 2 << 20
	}
	if c.Ops <= 0 {
		c.Ops = 20000
	}
	if c.WarmupOps <= 0 {
		c.WarmupOps = c.Ops
	}
	if c.OpSize <= 0 {
		c.OpSize = 4096
	}
	if c.ReadFrac == 0 {
		c.ReadFrac = 0.9
	}
	if c.HotDataFrac == 0 {
		c.HotDataFrac = 0.1
	}
	if c.HotAccessFrac == 0 {
		c.HotAccessFrac = 0.9
	}
	if c.PassEvery == 0 {
		c.PassEvery = 2000
	}
	if c.PassBudget <= 0 {
		c.PassBudget = 4096
	}
	return c
}

// TieredSweepResult is one sweep's outcome.
type TieredSweepResult struct {
	// Files and WorkingSetBytes echo the laid-out data set.
	Files           int
	WorkingSetBytes int64

	// SetupNS covers creating and writing the working set — where
	// allocation spill happens when it exceeds PM.
	SetupNS int64
	// WarmupNS is the virtual time of the unmeasured warmup accesses.
	WarmupNS int64
	// SweepNS is the virtual time of the measured access phase, including
	// the interleaved migration passes.
	SweepNS int64
	// Ops/Bytes echo the work done (baseline-gated exactly).
	Ops   int64
	Bytes int64
	// NSPerOp is SweepNS / Ops.
	NSPerOp float64
	// Passes is the number of migration passes the sweep ran.
	Passes int64

	// SetupCounters snapshots the setup phase (spill counters live here);
	// Counters snapshots the measured sweep thread (cold-miss slow-device
	// traffic, faults); MigrCounters snapshots the background migration
	// thread (tier demotions/promotions and their copy traffic).
	SetupCounters perf.Counters
	Counters      perf.Counters
	MigrCounters  perf.Counters

	// Tier is the end-of-sweep occupancy; TierOK is false on the
	// untiered control.
	Tier   winefs.TierStats
	TierOK bool
}

// GBps is the sweep's data rate in gigabytes per virtual second.
func (r TieredSweepResult) GBps() float64 {
	if r.SweepNS == 0 {
		return 0
	}
	return float64(r.Bytes) / float64(r.SweepNS)
}

// RunTieredSweep lays the working set out on fs (which must be freshly
// made) and runs the sweep. ctx drives setup; the measured phase runs on
// a fresh bench context advanced past setup, so layout cost never bleeds
// into the access numbers.
func RunTieredSweep(ctx *sim.Ctx, fs *winefs.FS, cfg TieredSweepConfig) (TieredSweepResult, error) {
	cfg = cfg.withDefaults()
	var res TieredSweepResult
	if cfg.WorkingSetBytes <= 0 {
		return res, fmt.Errorf("tieredsweep: WorkingSetBytes not set")
	}
	nFiles := int((cfg.WorkingSetBytes + cfg.FileBytes - 1) / cfg.FileBytes)
	res.Files = nFiles
	res.WorkingSetBytes = int64(nFiles) * cfg.FileBytes

	setupBase := *ctx.Counters
	setupStart := ctx.Now()
	fill := make([]byte, 1<<20)
	for i := range fill {
		fill[i] = byte(i*13 + 7)
	}
	files := make([]vfs.File, nFiles)
	for i := 0; i < nFiles; i++ {
		f, err := fs.Create(ctx, fmt.Sprintf("/ts%05d", i))
		if err != nil {
			return res, fmt.Errorf("tieredsweep: create %d: %w", i, err)
		}
		for off := int64(0); off < cfg.FileBytes; off += int64(len(fill)) {
			n := int64(len(fill))
			if off+n > cfg.FileBytes {
				n = cfg.FileBytes - off
			}
			// A tiered mount must absorb the overflow by spilling; ENOSPC
			// here means the slow tier failed its one job.
			if _, err := f.WriteAt(ctx, fill[:n], off); err != nil {
				return res, fmt.Errorf("tieredsweep: write file %d at %d: %w", i, off, err)
			}
		}
		files[i] = f
	}
	res.SetupNS = ctx.Now() - setupStart
	res.SetupCounters = *ctx.Counters
	res.SetupCounters.Sub(&setupBase)

	// Measured phase on a fresh context past every setup booking. The
	// migration passes run on their own simulated thread, the way the
	// winefsd daemon runs them: their copy traffic does not advance the
	// sweep thread's clock, but lock contention and slow-device queueing
	// still couple the two through the shared calendars.
	bench := sim.NewCtx(97, 0)
	bench.AdvanceTo(ctx.Now())
	mctx := sim.NewCtx(98, 0)

	rng := sim.NewRand(cfg.Seed + 31)
	slotsPerFile := cfg.FileBytes / int64(cfg.OpSize)
	nSlots := int64(nFiles) * slotsPerFile
	hotSlots := int64(cfg.HotDataFrac * float64(nSlots))
	if hotSlots < 1 {
		hotSlots = 1
	}
	buf := make([]byte, cfg.OpSize)
	val := make([]byte, cfg.OpSize)
	for i := range val {
		val[i] = byte(i*13 + 7)
	}
	// Rank 0 is the hottest slot. Scatter the FILE a rank lands in with a
	// multiplicative permutation (1000003 is prime, so coprime with any
	// realistic file count) while keeping ranks dense within a file.
	// Without this the hot head would land in whichever files were
	// created first — exactly the ones PM kept at setup — and the sweep
	// would never exercise heat-driven migration: the placement would be
	// born perfect. Scattering whole files (not 4KiB slots) keeps the
	// per-extent heat signal sharp, which is the granularity the
	// migration policy decides at.
	const scatter = 1000003
	access := func(i int, measured bool) error {
		var rank int64
		if rng.Float64() < cfg.HotAccessFrac {
			rank = rng.Int63n(hotSlots)
		} else {
			rank = hotSlots + rng.Int63n(nSlots-hotSlots)
		}
		slot := ((rank / slotsPerFile * scatter) % int64(nFiles)) * slotsPerFile
		slot += rank % slotsPerFile
		f := files[slot/slotsPerFile]
		off := (slot % slotsPerFile) * int64(cfg.OpSize)
		if rng.Float64() < cfg.ReadFrac {
			if _, err := f.ReadAt(bench, buf, off); err != nil {
				return fmt.Errorf("tieredsweep: read op %d: %w", i, err)
			}
		} else {
			if _, err := f.WriteAt(bench, val, off); err != nil {
				return fmt.Errorf("tieredsweep: write op %d: %w", i, err)
			}
		}
		if measured {
			res.Ops++
			res.Bytes += int64(cfg.OpSize)
		}
		if fs.Tiered() && cfg.PassEvery > 0 && (i+1)%cfg.PassEvery == 0 {
			mctx.AdvanceTo(bench.Now())
			if _, err := fs.TierPass(mctx, winefs.TierPassOptions{MaxMigrateBlocks: cfg.PassBudget}); err != nil {
				return fmt.Errorf("tieredsweep: pass at op %d: %w", i, err)
			}
			res.Passes++
		}
		return nil
	}

	warmStart := bench.Now()
	for i := 0; i < cfg.WarmupOps; i++ {
		if err := access(i, false); err != nil {
			return res, err
		}
	}
	res.WarmupNS = bench.Now() - warmStart

	benchBase := *bench.Counters
	sweepStart := bench.Now()
	for i := 0; i < cfg.Ops; i++ {
		if err := access(cfg.WarmupOps+i, true); err != nil {
			return res, err
		}
	}
	res.SweepNS = bench.Now() - sweepStart
	res.NSPerOp = float64(res.SweepNS) / float64(res.Ops)
	res.Counters = *bench.Counters
	res.Counters.Sub(&benchBase)
	res.MigrCounters = *mctx.Counters

	res.Tier, res.TierOK = fs.TierStats()
	if err := fs.Audit(bench); err != nil {
		return res, fmt.Errorf("tieredsweep: audit: %w", err)
	}
	return res, nil
}
