package workloads_test

import (
	"testing"

	"repro/internal/apps/pmemkv"
	"repro/internal/pmem"
	"repro/internal/sim"
	"repro/internal/vfs"
	"repro/internal/winefs"
	"repro/internal/workloads"
)

func newFS(t *testing.T, size int64) (vfs.FS, *sim.Ctx) {
	t.Helper()
	ctx := sim.NewCtx(1, 0)
	dev := pmem.New(size)
	fs, err := winefs.Mkfs(ctx, dev, winefs.Options{CPUs: 8})
	if err != nil {
		t.Fatal(err)
	}
	return fs, ctx
}

func TestYCSBAllWorkloads(t *testing.T) {
	fs, ctx := newFS(t, 1<<30)
	kv, err := pmemkv.Open(ctx, fs, "/kv")
	if err != nil {
		t.Fatal(err)
	}
	cfg := workloads.YCSBConfig{Records: 2000, Operations: 2000, ValueSize: 256}
	if err := workloads.YCSBLoadPhase(ctx, kv, cfg); err != nil {
		t.Fatal(err)
	}
	for _, kind := range workloads.AllYCSB()[1:] {
		r, err := workloads.YCSBRun(ctx, kv, kind, cfg)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if r.Throughput() <= 0 {
			t.Fatalf("%s: zero throughput", kind)
		}
	}
}

func TestDBBenchKinds(t *testing.T) {
	fs, ctx := newFS(t, 1<<30)
	kv, _ := pmemkv.Open(ctx, fs, "/kv")
	cfg := workloads.DBBenchConfig{Records: 2000, ValueSize: 512}
	for _, kind := range []workloads.DBBenchKind{
		workloads.FillSeq, workloads.FillSeqBatch, workloads.FillRandom, workloads.ReadRandom,
	} {
		ops, ns, err := workloads.DBBench(ctx, kv, kind, cfg)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if ops != 2000 || ns <= 0 {
			t.Fatalf("%s: ops=%d ns=%d", kind, ops, ns)
		}
	}
}

func TestFilebenchPersonalities(t *testing.T) {
	for _, p := range workloads.AllPersonalities() {
		p := p
		t.Run(p.String(), func(t *testing.T) {
			fs, _ := newFS(t, 1<<30)
			r, err := workloads.Filebench(fs, p, workloads.FilebenchConfig{
				Threads: 4, Files: 200, OpsPerThread: 20,
			})
			if err != nil {
				t.Fatal(err)
			}
			if r.Throughput() <= 0 {
				t.Fatal("zero throughput")
			}
		})
	}
}

func TestPgbench(t *testing.T) {
	fs, _ := newFS(t, 1<<30)
	r, err := workloads.Pgbench(fs, workloads.PgbenchConfig{
		Threads: 4, DatabaseBytes: 64 << 20, TxPerThread: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	if r.TPS() <= 0 || r.Tx != 200 {
		t.Fatalf("tps=%f tx=%d", r.TPS(), r.Tx)
	}
}

func TestWiredTiger(t *testing.T) {
	fs, ctx := newFS(t, 1<<30)
	ops, ns, offsets, err := workloads.WiredTigerFill(ctx, fs, workloads.WiredTigerConfig{Records: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if ops != 2000 || ns <= 0 || len(offsets) != 2000 {
		t.Fatalf("fill: ops=%d ns=%d offs=%d", ops, ns, len(offsets))
	}
	rops, rns, err := workloads.WiredTigerRead(ctx, fs, workloads.WiredTigerConfig{Records: 2000}, offsets)
	if err != nil {
		t.Fatal(err)
	}
	if rops != 2000 || rns <= 0 {
		t.Fatalf("read: ops=%d ns=%d", rops, rns)
	}
}

func TestScalabilityImproves(t *testing.T) {
	// More threads must yield more throughput on a per-CPU-journal FS.
	tput := map[int]float64{}
	for _, threads := range []int{1, 8} {
		fs, _ := newFS(t, 1<<30)
		v, err := workloads.Scalability(fs, workloads.ScalabilityConfig{
			Threads: threads, OpsPerThread: 100,
		})
		if err != nil {
			t.Fatal(err)
		}
		tput[threads] = v
	}
	if tput[8] < tput[1]*3 {
		t.Fatalf("WineFS scalability poor: 1thr=%.0f 8thr=%.0f", tput[1], tput[8])
	}
}
