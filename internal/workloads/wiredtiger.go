package workloads

import (
	"repro/internal/sim"
	"repro/internal/vfs"
)

// WiredTigerConfig sizes the WiredTiger-style driver (§5.5: FillRandom and
// ReadRandom with 1KiB values).
type WiredTigerConfig struct {
	Records   int64
	ValueSize int
	// CheckpointEvery forces an fsync after this many inserts.
	CheckpointEvery int
	Seed            uint64
}

func (c *WiredTigerConfig) defaults() {
	if c.Records == 0 {
		c.Records = 20000
	}
	if c.ValueSize == 0 {
		c.ValueSize = 1024 // unaligned on purpose: 1KiB records
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 500
	}
}

// WiredTigerFill appends Records values of ValueSize to a table file at
// naturally unaligned offsets, fsyncing at checkpoints. NOVA must CoW the
// partial tail block on every such append ("NOVA copies the data in the
// partial block to the new block and then appends new data"); WineFS keeps
// appending in place under journal protection. Returns (ops, virtualNS,
// the table offsets for the read phase).
func WiredTigerFill(ctx *sim.Ctx, fs vfs.FS, cfg WiredTigerConfig) (int64, int64, []int64, error) {
	cfg.defaults()
	if err := fs.Mkdir(ctx, "/wt"); err != nil && err != vfs.ErrExist {
		return 0, 0, nil, err
	}
	table, err := fs.Create(ctx, "/wt/table.wt")
	if err != nil {
		return 0, 0, nil, err
	}
	log, err := fs.Create(ctx, "/wt/journal")
	if err != nil {
		return 0, 0, nil, err
	}
	rng := sim.NewRand(cfg.Seed + 5)
	val := make([]byte, cfg.ValueSize)
	offsets := make([]int64, 0, cfg.Records)
	start := ctx.Now()
	var off int64
	for i := int64(0); i < cfg.Records; i++ {
		// Key order is random (fillrandom) but the B-tree writes pages in
		// append order with per-record log entries.
		val[0] = byte(rng.Intn(256))
		if _, err := log.Append(ctx, val[:128]); err != nil {
			return 0, 0, nil, err
		}
		if _, err := table.Append(ctx, val); err != nil {
			return 0, 0, nil, err
		}
		offsets = append(offsets, off)
		off += int64(cfg.ValueSize)
		if int(i)%cfg.CheckpointEvery == cfg.CheckpointEvery-1 {
			if err := table.Fsync(ctx); err != nil {
				return 0, 0, nil, err
			}
			if err := log.Fsync(ctx); err != nil {
				return 0, 0, nil, err
			}
		}
	}
	return cfg.Records, ctx.Now() - start, offsets, nil
}

// WiredTigerRead performs the ReadRandom phase over the filled table.
func WiredTigerRead(ctx *sim.Ctx, fs vfs.FS, cfg WiredTigerConfig, offsets []int64) (int64, int64, error) {
	cfg.defaults()
	table, err := fs.Open(ctx, "/wt/table.wt")
	if err != nil {
		return 0, 0, err
	}
	rng := sim.NewRand(cfg.Seed + 6)
	buf := make([]byte, cfg.ValueSize)
	start := ctx.Now()
	for i := int64(0); i < cfg.Records; i++ {
		off := offsets[rng.Intn(len(offsets))]
		if _, err := table.ReadAt(ctx, buf, off); err != nil {
			return 0, 0, err
		}
	}
	return cfg.Records, ctx.Now() - start, nil
}

// ScalabilityConfig sizes the Figure 10 microbenchmark: per thread,
// create a file, append 4KiB chunks, fsync, unlink — repeatedly.
type ScalabilityConfig struct {
	Threads      int
	OpsPerThread int
	AppendSize   int
	AppendsPerOp int
}

func (c *ScalabilityConfig) defaults() {
	if c.Threads == 0 {
		c.Threads = 8
	}
	if c.OpsPerThread == 0 {
		c.OpsPerThread = 200
	}
	if c.AppendSize == 0 {
		c.AppendSize = 4096
	}
	if c.AppendsPerOp == 0 {
		c.AppendsPerOp = 4
	}
}

// Scalability runs the create/append/fsync/unlink loop on every thread
// (each pinned to its own CPU) and returns total kIOPS-style throughput:
// completed operations (each syscall counts) per virtual second.
func Scalability(fs vfs.FS, cfg ScalabilityConfig) (float64, error) {
	cfg.defaults()
	setup := sim.NewCtx(1000, 0)
	if err := fs.Mkdir(setup, "/scale"); err != nil && err != vfs.ErrExist {
		return 0, err
	}
	type res struct {
		ns  int64
		ops int64
		err error
	}
	done := make(chan res, cfg.Threads)
	// Per-thread working directories: the microbenchmark measures journal
	// and allocator scalability, not contention on one directory's lock.
	for th := 0; th < cfg.Threads; th++ {
		if err := fs.Mkdir(setup, "/scale/w"+itoa(th)); err != nil && err != vfs.ErrExist {
			return 0, err
		}
	}
	setupEnd := setup.Now()
	for th := 0; th < cfg.Threads; th++ {
		go func(th int) {
			ctx := sim.NewCtx(4000+th, th)
			ctx.AdvanceTo(setupEnd)
			dir := "/scale/w" + itoa(th)
			var ops int64
			data := make([]byte, cfg.AppendSize)
			for i := 0; i < cfg.OpsPerThread; i++ {
				path := dir + "/t" + itoa(th) + "_" + itoa(i)
				f, err := fs.Create(ctx, path)
				if err != nil {
					done <- res{err: err}
					return
				}
				ops++
				for a := 0; a < cfg.AppendsPerOp; a++ {
					if _, err := f.Append(ctx, data); err != nil {
						done <- res{err: err}
						return
					}
					ops++
				}
				if err := f.Fsync(ctx); err != nil {
					done <- res{err: err}
					return
				}
				ops++
				if err := fs.Unlink(ctx, path); err != nil {
					done <- res{err: err}
					return
				}
				ops++
			}
			done <- res{ns: ctx.Now(), ops: ops}
		}(th)
	}
	var maxNS, totalOps int64
	for i := 0; i < cfg.Threads; i++ {
		r := <-done
		if r.err != nil {
			return 0, r.err
		}
		if r.ns > maxNS {
			maxNS = r.ns
		}
		totalOps += r.ops
	}
	if maxNS <= setupEnd {
		return 0, nil
	}
	return float64(totalOps) / (float64(maxNS-setupEnd) / 1e9), nil
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
