package workloads

import (
	"fmt"

	"repro/internal/defrag"
	"repro/internal/mmu"
	"repro/internal/perf"
	"repro/internal/sim"
	"repro/internal/vmm"
	"repro/internal/winefs"
)

// DefragSoak is the winebench -defrag recovery workload: it measures how
// much hugepage coverage the online defragmenter (§3.5) gives back to a
// live mapping on an adversarially aged image.
//
// Three conditions on the same configuration:
//
//  1. unaged — a fresh image; the bench file tiles aligned extents and
//     the mapping faults in as hugepages (the control coverage).
//  2. aged — the image is churned into the Geriatrix endgame state
//     (every hugepage chunk half-live, aligned pools empty) before the
//     bench file is created; its extents come from unaligned holes and
//     the same mapping faults in as base pages.
//  3. aged+defrag — the aged mapping stays live while the defragmenter
//     runs: migrations re-form aligned extents, the queued reactive
//     rewrite lands the bench file on them, and the promotion
//     notification upgrades the live mapping in place. Coverage is
//     re-read from the SAME mapping, with no further touches — any
//     recovery is the notification path, not refaults.

// DefragSoakConfig sizes the soak.
type DefragSoakConfig struct {
	// FileBytes is the mapped bench file (default 32MiB, hugepage-rounded).
	FileBytes int64
	// Util caps the churn fill's utilisation before the alternate
	// deletes (default 0.8).
	Util float64
	// Budget is the defragmenter duty cycle (default 0.5; the recovery
	// phase is about coverage, not interference).
	Budget float64
	Seed   uint64
}

func (c DefragSoakConfig) withDefaults() DefragSoakConfig {
	if c.FileBytes <= 0 {
		c.FileBytes = 32 << 20
	}
	c.FileBytes = (c.FileBytes + mmu.HugePage - 1) / mmu.HugePage * mmu.HugePage
	if c.Util == 0 {
		c.Util = 0.8
	}
	if c.Budget == 0 {
		c.Budget = 0.5
	}
	return c
}

// DefragSoakResult is the soak outcome.
type DefragSoakResult struct {
	// Coverage per condition (huge chunks / total faulted chunks).
	UnagedHuge, UnagedTotal int
	AgedHuge, AgedTotal     int
	DefragHuge, DefragTotal int

	// DefragNS is the virtual time the maintenance thread spent
	// (including pacer-injected idle); SetupNS covers aging + layout.
	SetupNS  int64
	DefragNS int64

	// Defrag work done (baseline-gated exactly).
	Passes         int64
	MigratedBlocks int64
	Recovered2M    int64
	Rewrites       int64
	Repromoted     int64

	// Counters snapshots the defrag thread's counters.
	Counters perf.Counters
}

// UnagedCoverage, AgedCoverage, RecoveredCoverage in [0,1].
func cov(huge, total int) float64 {
	if total == 0 {
		return 0
	}
	return float64(huge) / float64(total)
}
func (r DefragSoakResult) UnagedCoverage() float64    { return cov(r.UnagedHuge, r.UnagedTotal) }
func (r DefragSoakResult) AgedCoverage() float64      { return cov(r.AgedHuge, r.AgedTotal) }
func (r DefragSoakResult) RecoveredCoverage() float64 { return cov(r.DefragHuge, r.DefragTotal) }

// RunDefragSoak runs the three conditions. mk builds a fresh WineFS on a
// fresh device each time (the conditions must not share state); cpus
// places the maintenance thread on the last CPU, away from the mapper.
func RunDefragSoak(mk func(ctx *sim.Ctx) (*winefs.FS, error), cpus int, cfg DefragSoakConfig) (DefragSoakResult, error) {
	cfg = cfg.withDefaults()
	var res DefragSoakResult

	// Condition 1: unaged control.
	{
		ctx := sim.NewCtx(1, 0)
		fs, err := mk(ctx)
		if err != nil {
			return res, err
		}
		m, err := soakMapFile(ctx, fs, cfg)
		if err != nil {
			return res, fmt.Errorf("unaged: %w", err)
		}
		res.UnagedHuge, res.UnagedTotal = m.FaultedChunks()
		if err := m.Close(ctx); err != nil {
			return res, err
		}
	}

	// Conditions 2+3 share one image: age, map, measure, defrag, re-measure.
	ctx := sim.NewCtx(2, 0)
	fs, err := mk(ctx)
	if err != nil {
		return res, err
	}
	setupStart := ctx.Now()
	if err := churnAge(ctx, fs, cfg.Util); err != nil {
		return res, fmt.Errorf("age: %w", err)
	}
	m, err := soakMapFile(ctx, fs, cfg)
	if err != nil {
		return res, fmt.Errorf("aged: %w", err)
	}
	res.SetupNS = ctx.Now() - setupStart
	res.AgedHuge, res.AgedTotal = m.FaultedChunks()

	// The maintenance thread: its own context on the last CPU, booked
	// against the same device calendar as any foreground work would be.
	if cpus < 1 {
		cpus = 1
	}
	bg := sim.NewCtx(3, cpus-1)
	bg.AdvanceTo(ctx.Now())
	defragStart := bg.Now()
	r := defrag.New(fs, defrag.Config{Budget: cfg.Budget})
	sum, err := r.Run(bg)
	if err != nil {
		return res, fmt.Errorf("defrag: %w", err)
	}
	res.DefragNS = bg.Now() - defragStart
	res.DefragHuge, res.DefragTotal = m.FaultedChunks()
	res.Passes = bg.Counters.DefragPasses
	res.MigratedBlocks = sum.MigratedBlocks
	res.Recovered2M = sum.Recovered2M
	res.Rewrites = int64(sum.Rewrites)
	res.Repromoted = bg.Counters.DefragRepromotions
	res.Counters = *bg.Counters
	if err := m.Close(bg); err != nil {
		return res, err
	}
	return res, nil
}

// soakMapFile creates the bench file, prewrites it, maps it and faults
// every chunk in.
func soakMapFile(ctx *sim.Ctx, fs *winefs.FS, cfg DefragSoakConfig) (*vmm.Mapping, error) {
	f, err := fs.Create(ctx, "/defrag.bench")
	if err != nil {
		return nil, err
	}
	// Preallocate in one call: on the unaged image the whole file comes
	// out of the aligned pool (the control layout); on the aged image the
	// same call falls back to unaligned holes (the fragmented condition).
	if err := f.Fallocate(ctx, 0, cfg.FileBytes); err != nil {
		return nil, err
	}
	fill := make([]byte, 1<<20)
	for i := range fill {
		fill[i] = byte(i * 13)
	}
	for off := int64(0); off < cfg.FileBytes; off += int64(len(fill)) {
		if _, err := f.WriteAt(ctx, fill, off); err != nil {
			return nil, fmt.Errorf("prewrite at %d: %w", off, err)
		}
	}
	m, err := vmm.Map(ctx, f, cfg.FileBytes, vmm.Config{Mode: vmm.ModeShared, MapFullFile: true})
	if err != nil {
		return nil, err
	}
	if err := m.Touch(ctx, 0, cfg.FileBytes, false); err != nil {
		return nil, err
	}
	return m, nil
}

// churnAge drives the image into the aged endgame every real ager
// converges to at high churn: utilisation brought up with 1MiB files
// (which pack two per hugepage chunk), then every other file deleted,
// so each touched chunk is half live. The aligned extents the fill cap
// left untouched are pinned by a long-lived file, so the bench file —
// and every later allocation — must come from unaligned holes: the
// worst case §3.5 exists for, with zero free aligned extents despite
// ample free space.
func churnAge(ctx *sim.Ctx, fs *winefs.FS, util float64) error {
	var names []string
	buf := make([]byte, 1<<20)
	for i := 0; ; i++ {
		st := fs.StatFS(ctx)
		if 1-float64(st.FreeBlocks)/float64(st.TotalBlocks) >= util {
			break
		}
		name := fmt.Sprintf("/churn%05d", i)
		f, err := fs.Create(ctx, name)
		if err != nil {
			return err
		}
		if _, err := f.WriteAt(ctx, buf, 0); err != nil {
			return err
		}
		names = append(names, name)
	}
	for i := 0; i < len(names); i += 2 {
		if err := fs.Unlink(ctx, names[i]); err != nil {
			return err
		}
	}
	// Pin what is left of the aligned pools.
	pin, err := fs.Create(ctx, "/churn.pin")
	if err != nil {
		return err
	}
	var off int64
	for i := 0; i < 32; i++ {
		aligned := fs.StatFS(ctx).FreeAligned2M
		if aligned == 0 {
			return nil
		}
		n := aligned * mmu.HugePage
		if err := pin.Fallocate(ctx, off, n); err != nil {
			return err
		}
		off += n
	}
	if got := fs.StatFS(ctx).FreeAligned2M; got != 0 {
		return fmt.Errorf("aging left %d aligned extents free", got)
	}
	return nil
}
