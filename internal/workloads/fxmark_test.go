package workloads_test

import (
	"sync"
	"testing"

	"repro/internal/pmem"
	"repro/internal/sim"
	"repro/internal/vfs"
	"repro/internal/winefs"
	"repro/internal/workloads"
)

// runFxmark boots a fresh strict-mode FS, runs one fxmark case at the
// given thread count (thread t pinned to CPU t, clocks aligned to the
// setup frontier), and returns the slowest thread's virtual span.
func runFxmark(t *testing.T, c workloads.FxmarkCase, threads int) int64 {
	t.Helper()
	const cpus = 8
	dev := pmem.New(1 << 30)
	setup := sim.NewCtx(1, 0)
	fs, err := winefs.Mkfs(setup, dev, winefs.Options{CPUs: cpus, Mode: vfs.Strict})
	if err != nil {
		t.Fatal(err)
	}
	cfg := workloads.FxmarkConfig{Ops: 64, Seed: 7}
	if err := workloads.FxmarkSetup(setup, fs, c, threads, cfg); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	spans := make([]int64, threads)
	errs := make([]error, threads)
	for w := 0; w < threads; w++ {
		ctx := sim.NewCtx(100+w, w%cpus)
		ctx.AdvanceTo(setup.Now())
		wg.Add(1)
		go func(w int, ctx *sim.Ctx) {
			defer wg.Done()
			res, err := workloads.FxmarkThread(ctx, fs, w, c, threads, cfg)
			spans[w], errs[w] = res.VirtualNS, err
		}(w, ctx)
	}
	wg.Wait()
	var span int64
	for w := 0; w < threads; w++ {
		if errs[w] != nil {
			t.Fatalf("%s thread %d: %v", c, w, errs[w])
		}
		if spans[w] > span {
			span = spans[w]
		}
	}
	return span
}

// TestFxmarkScalingShape is the acceptance guard for the concurrency
// architecture, in test form: with 4 threads, shared reads and
// disjoint-range writes must run concurrently in virtual time (span well
// under 4x a single thread's), while overlapping writes to the same bytes
// must serialise (span growing with thread count like the single-thread
// span does). The committed BENCH_scaling.json tracks exact numbers; this
// test only pins the qualitative shape so `go test` catches a
// whole-inode-serialisation regression without the bench harness.
func TestFxmarkScalingShape(t *testing.T) {
	const threads = 4
	for _, tc := range []struct {
		c workloads.FxmarkCase
		// maxRatio bounds span(threads)/span(1) for scaling cases;
		// minRatio floors it for serialising cases.
		maxRatio, minRatio float64
	}{
		{c: workloads.FxSharedRead, maxRatio: 2.0},
		{c: workloads.FxDisjointWrite, maxRatio: 3.0},
		{c: workloads.FxPrivateAppend, maxRatio: 3.0},
		{c: workloads.FxOverlapWrite, minRatio: 3.0},
	} {
		one := runFxmark(t, tc.c, 1)
		many := runFxmark(t, tc.c, threads)
		ratio := float64(many) / float64(one)
		if tc.maxRatio > 0 && ratio > tc.maxRatio {
			t.Errorf("%s: span(%d)/span(1) = %.2f, want <= %.1f (threads are serialising)",
				tc.c, threads, ratio, tc.maxRatio)
		}
		if tc.minRatio > 0 && ratio < tc.minRatio {
			t.Errorf("%s: span(%d)/span(1) = %.2f, want >= %.1f (conflicting writes overlapped in virtual time)",
				tc.c, threads, ratio, tc.minRatio)
		}
	}
}
