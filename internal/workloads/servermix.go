package workloads

import (
	"bytes"
	"fmt"

	"repro/internal/perf"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// ServerMix is the multi-client serving workload: each client runs a mixed
// create / append / fsync / read-back / rename / unlink loop in a private
// directory, verifying every read byte-for-byte against the deterministic
// pattern it wrote. It drives any vfs.FS — in particular a
// fileserver.Client, which is how the serving-throughput baseline
// (winebench -server), the winefsd smoke test and the fileserver tests all
// exercise a remote mount with an exact data oracle.

// ServerMixConfig sizes one client's loop.
type ServerMixConfig struct {
	// Ops is the number of loop iterations (each issues several syscalls).
	Ops int
	// MeanFileKB is the mean file size (default 16).
	MeanFileKB int
	Seed       uint64
}

func (c *ServerMixConfig) defaults() {
	if c.Ops == 0 {
		c.Ops = 200
	}
	if c.MeanFileKB == 0 {
		c.MeanFileKB = 16
	}
}

// ServerMixResult reports one client's run.
type ServerMixResult struct {
	// Ops counts completed file-system operations (syscalls), not loop
	// iterations.
	Ops int64
	// VirtualNS is the client's virtual time from first to last op.
	VirtualNS int64
	// Lat holds per-operation virtual latencies.
	Lat perf.Histogram
}

// serverMixPattern fills p with the byte stream file (client, i) must
// contain; reads compare against it exactly.
func serverMixPattern(p []byte, client, i int) {
	for j := range p {
		p[j] = byte(client*131 + i*31 + j*7 + 1)
	}
}

// ServerMixClient runs one client's mixed loop on fs. Every client must
// use a distinct id; clients may share one fs (or one fileserver.Client)
// and may run concurrently, each with its own ctx.
func ServerMixClient(ctx *sim.Ctx, fs vfs.FS, client int, cfg ServerMixConfig) (ServerMixResult, error) {
	cfg.defaults()
	var res ServerMixResult
	start := ctx.Now()
	step := func(err error) error {
		res.Ops++
		return err
	}
	timed := func(f func() error) error {
		t0 := ctx.Now()
		err := f()
		res.Lat.Record(ctx.Now() - t0)
		return step(err)
	}

	if err := fs.Mkdir(ctx, "/mix"); err != nil && err != vfs.ErrExist {
		return res, fmt.Errorf("servermix: mkdir /mix: %w", err)
	}
	dir := fmt.Sprintf("/mix/c%03d", client)
	if err := fs.Mkdir(ctx, dir); err != nil && err != vfs.ErrExist {
		return res, fmt.Errorf("servermix: mkdir %s: %w", dir, err)
	}
	rng := sim.NewRand(cfg.Seed + uint64(client)*2654435761 + 17)

	for i := 0; i < cfg.Ops; i++ {
		name := fmt.Sprintf("%s/f%05d", dir, i)
		size := int((cfg.MeanFileKB << 9) + rng.Intn(cfg.MeanFileKB<<10))
		buf := make([]byte, size)
		serverMixPattern(buf, client, i)

		var f vfs.File
		if err := timed(func() (err error) {
			f, err = fs.Create(ctx, name)
			return err
		}); err != nil {
			return res, fmt.Errorf("servermix: create %s: %w", name, err)
		}
		if err := timed(func() (err error) {
			_, err = f.Append(ctx, buf)
			return err
		}); err != nil {
			return res, fmt.Errorf("servermix: append %s: %w", name, err)
		}
		if i%3 == 0 {
			if err := timed(func() error { return f.Fsync(ctx) }); err != nil {
				return res, fmt.Errorf("servermix: fsync %s: %w", name, err)
			}
		}
		rbuf := make([]byte, size)
		var n int
		if err := timed(func() (err error) {
			n, err = f.ReadAt(ctx, rbuf, 0)
			return err
		}); err != nil {
			return res, fmt.Errorf("servermix: read %s: %w", name, err)
		}
		if n != size || !bytes.Equal(rbuf[:n], buf) {
			return res, fmt.Errorf("servermix: corrupt read of %s: %d/%d bytes", name, n, size)
		}
		if err := timed(func() error { return f.Close(ctx) }); err != nil {
			return res, fmt.Errorf("servermix: close %s: %w", name, err)
		}

		cur := name
		if i%4 == 3 {
			renamed := name + ".r"
			if err := timed(func() error { return fs.Rename(ctx, name, renamed) }); err != nil {
				return res, fmt.Errorf("servermix: rename %s: %w", name, err)
			}
			cur = renamed
			// Re-open through the new name and spot-check the content
			// survived the rename.
			var g vfs.File
			if err := timed(func() (err error) {
				g, err = fs.Open(ctx, renamed)
				return err
			}); err != nil {
				return res, fmt.Errorf("servermix: open %s: %w", renamed, err)
			}
			if err := timed(func() (err error) {
				n, err = g.ReadAt(ctx, rbuf, 0)
				return err
			}); err != nil {
				return res, fmt.Errorf("servermix: reread %s: %w", renamed, err)
			}
			if n != size || !bytes.Equal(rbuf[:n], buf) {
				return res, fmt.Errorf("servermix: corrupt read after rename of %s", renamed)
			}
			if err := timed(func() error { return g.Close(ctx) }); err != nil {
				return res, fmt.Errorf("servermix: close %s: %w", renamed, err)
			}
		}
		if i%8 == 7 {
			if err := timed(func() error { return fs.Unlink(ctx, cur) }); err != nil {
				return res, fmt.Errorf("servermix: unlink %s: %w", cur, err)
			}
		} else if err := timed(func() (err error) {
			_, err = fs.Stat(ctx, cur)
			return err
		}); err != nil {
			return res, fmt.Errorf("servermix: stat %s: %w", cur, err)
		}
	}
	res.VirtualNS = ctx.Now() - start
	return res, nil
}
