package workloads

import (
	"bytes"
	"fmt"

	"repro/internal/sim"
	"repro/internal/vfs"
)

// fxmark-style scalability microbenchmarks: each case stresses one sharing
// level of the concurrency architecture, so throughput vs thread count
// shows which layer serialises. The cases mirror fxmark's (ATC'16)
// taxonomy on the operations WineFS cares about:
//
//	shared-read     N threads read random blocks of one shared file.
//	                Shared inode locks — must scale to bandwidth.
//	disjoint-write  N threads overwrite disjoint 2MiB regions of one
//	                preallocated shared file. Byte-range locks — must
//	                scale to bandwidth.
//	overlap-write   N threads overwrite the same 4KiB of one file.
//	                Conflicting ranges — must serialise.
//	private-append  each thread appends to its own file. Per-CPU
//	                journals and allocation groups — must scale.
//	meta-contended  N threads create+unlink in one shared directory.
//	                Exclusive parent-inode lock — serialises by design.
//
// Every thread must run with a distinct (id, CPU) ctx; with one thread per
// CPU group the work performed — ops, bytes, journal commits — is exactly
// reproducible, which is what lets BENCH_scaling.json gate on exact work
// counters.

// FxmarkCase names one scalability microbenchmark.
type FxmarkCase string

const (
	FxSharedRead    FxmarkCase = "shared-read"
	FxDisjointWrite FxmarkCase = "disjoint-write"
	FxOverlapWrite  FxmarkCase = "overlap-write"
	FxPrivateAppend FxmarkCase = "private-append"
	FxMetaContended FxmarkCase = "meta-contended"
)

// FxmarkCases lists every case in report order.
func FxmarkCases() []FxmarkCase {
	return []FxmarkCase{FxSharedRead, FxDisjointWrite, FxOverlapWrite, FxPrivateAppend, FxMetaContended}
}

const (
	// fxIO is the I/O unit.
	fxIO = 4096
	// fxRegion is each thread's slice of the shared file. 2MiB keeps the
	// preallocation on the aligned-extent path, so strict-mode overwrites
	// take the data-journal (in-place, range-locked) fast path rather
	// than copy-on-write.
	fxRegion = int64(2 << 20)
)

// FxmarkConfig sizes one thread's loop.
type FxmarkConfig struct {
	// Ops is the number of loop iterations per thread.
	Ops  int
	Seed uint64
}

func (c *FxmarkConfig) defaults() {
	if c.Ops == 0 {
		c.Ops = 100
	}
}

// FxmarkThreadResult reports one thread's run.
type FxmarkThreadResult struct {
	// Ops counts completed file-system operations (syscalls).
	Ops int64
	// Bytes counts payload bytes read or written.
	Bytes int64
	// VirtualNS is the thread's virtual time from first to last op.
	VirtualNS int64
}

// fxSlice returns the byte stream the shared file holds at absolute offset
// off, length n, so any reader can verify any block without knowing who
// wrote it. The slice aliases a shared read-only table: callers hand it to
// WriteAt (which copies) or compare against it, never mutate it.
//
// The defining formula is byte(x*131>>4 + x + 7) with x = off+j. Its value
// depends only on x mod 4096: write x = q*4096 + r, then x*131 splits as
// q*4096*131 + r*131 with the first term divisible by 16, so the >>4
// distributes and contributes q*256*131 ≡ 0 (mod 256); likewise x ≡ r
// (mod 256). The whole stream is therefore one 4KiB table tiled with
// period 4096, and any window of it is a subslice of fxStream — the
// pattern costs no fill at all, where per-byte evaluation was 4096
// multiplies per block and a table-tiling copy still doubled every
// write's memmove. (The argument uses floor shifts on non-negative x;
// offsets are never negative.)
func fxSlice(off, n int64) []byte {
	r := off & 4095
	return fxStream[r : r+n]
}

// fxStream is the pattern table tiled to one region plus one period, so
// fxSlice can serve any window up to fxRegion long at any alignment.
var fxStream = func() []byte {
	s := make([]byte, fxRegion+4096)
	for i := range s {
		x := int64(i)
		s[i] = byte(x*131>>4 + x + 7)
	}
	return s
}()

// FxmarkSetup prepares the namespace for one case, single-threaded: the
// shared file is preallocated and patterned region by region, the shared
// directory pre-grown so the measured loops never allocate dirent blocks
// (keeping run-phase work counters independent of thread interleaving).
func FxmarkSetup(ctx *sim.Ctx, fs vfs.FS, c FxmarkCase, threads int, cfg FxmarkConfig) error {
	cfg.defaults()
	if err := fs.Mkdir(ctx, "/fx"); err != nil && err != vfs.ErrExist {
		return fmt.Errorf("fxmark setup: mkdir /fx: %w", err)
	}
	switch c {
	case FxSharedRead, FxDisjointWrite, FxOverlapWrite:
		f, err := fs.Create(ctx, "/fx/shared")
		if err != nil {
			return fmt.Errorf("fxmark setup: create shared: %w", err)
		}
		size := int64(threads) * fxRegion
		if err := f.Fallocate(ctx, 0, size); err != nil {
			return fmt.Errorf("fxmark setup: fallocate: %w", err)
		}
		for off := int64(0); off < size; off += fxRegion {
			if _, err := f.WriteAt(ctx, fxSlice(off, fxRegion), off); err != nil {
				return fmt.Errorf("fxmark setup: pattern at %d: %w", off, err)
			}
		}
		if err := f.Close(ctx); err != nil {
			return err
		}
	case FxMetaContended:
		if err := fs.Mkdir(ctx, "/fx/meta"); err != nil && err != vfs.ErrExist {
			return fmt.Errorf("fxmark setup: mkdir /fx/meta: %w", err)
		}
		// Seed the directory's free dirent slots so the measured
		// create/unlink churn (at most `threads` live entries) never grows
		// the directory mid-run.
		for i := 0; i < 2*threads; i++ {
			name := fmt.Sprintf("/fx/meta/seed%04d", i)
			f, err := fs.Create(ctx, name)
			if err != nil {
				return fmt.Errorf("fxmark setup: seed create: %w", err)
			}
			if err := f.Close(ctx); err != nil {
				return err
			}
		}
		for i := 0; i < 2*threads; i++ {
			if err := fs.Unlink(ctx, fmt.Sprintf("/fx/meta/seed%04d", i)); err != nil {
				return fmt.Errorf("fxmark setup: seed unlink: %w", err)
			}
		}
	case FxPrivateAppend:
		// Threads create their own files.
	}
	return nil
}

// FxmarkThread runs one thread's loop. Threads for a run share fs and run
// concurrently, each with its own ctx.
func FxmarkThread(ctx *sim.Ctx, fs vfs.FS, thread int, c FxmarkCase, threads int, cfg FxmarkConfig) (FxmarkThreadResult, error) {
	cfg.defaults()
	var res FxmarkThreadResult
	start := ctx.Now()
	rng := sim.NewRand(cfg.Seed + uint64(thread)*2654435761 + 11)

	switch c {
	case FxSharedRead:
		f, err := fs.Open(ctx, "/fx/shared")
		if err != nil {
			return res, fmt.Errorf("fxmark %s: open: %w", c, err)
		}
		res.Ops++
		size := int64(threads) * fxRegion
		buf := make([]byte, fxIO)
		for i := 0; i < cfg.Ops; i++ {
			off := rng.Int63n(size/fxIO) * fxIO
			n, err := f.ReadAt(ctx, buf, off)
			if err != nil || n != fxIO {
				return res, fmt.Errorf("fxmark %s: read at %d: %d bytes, %w", c, off, n, err)
			}
			res.Ops++
			res.Bytes += int64(n)
			if !bytes.Equal(buf, fxSlice(off, fxIO)) {
				return res, fmt.Errorf("fxmark %s: corrupt read at %d", c, off)
			}
		}
		res.Ops++ // close
		if err := f.Close(ctx); err != nil {
			return res, err
		}

	case FxDisjointWrite, FxOverlapWrite:
		f, err := fs.Open(ctx, "/fx/shared")
		if err != nil {
			return res, fmt.Errorf("fxmark %s: open: %w", c, err)
		}
		res.Ops++
		base := int64(thread) * fxRegion
		if c == FxOverlapWrite {
			base = 0 // every thread hammers the same 4KiB
		}
		rbuf := make([]byte, fxIO)
		for i := 0; i < cfg.Ops; i++ {
			off := base
			if c == FxDisjointWrite {
				off = base + int64(i)*fxIO%fxRegion
			}
			buf := fxSlice(off, fxIO)
			n, err := f.WriteAt(ctx, buf, off)
			if err != nil || n != fxIO {
				return res, fmt.Errorf("fxmark %s: write at %d: %d bytes, %w", c, off, n, err)
			}
			res.Ops++
			res.Bytes += int64(n)
			if c == FxDisjointWrite && i%16 == 15 {
				// Read back our own region: nobody else writes it, so the
				// pattern must round-trip even mid-run.
				if n, err := f.ReadAt(ctx, rbuf, off); err != nil || n != fxIO {
					return res, fmt.Errorf("fxmark %s: verify read at %d: %w", c, off, err)
				}
				res.Ops++
				res.Bytes += fxIO
				if !bytes.Equal(rbuf, buf) {
					return res, fmt.Errorf("fxmark %s: corrupt readback at %d", c, off)
				}
			}
		}
		res.Ops++
		if err := f.Close(ctx); err != nil {
			return res, err
		}

	case FxPrivateAppend:
		name := fmt.Sprintf("/fx/p%03d", thread)
		f, err := fs.Create(ctx, name)
		if err != nil {
			return res, fmt.Errorf("fxmark %s: create: %w", c, err)
		}
		res.Ops++
		for i := 0; i < cfg.Ops; i++ {
			buf := fxSlice(int64(thread)<<32+int64(i)*fxIO, fxIO)
			n, err := f.Append(ctx, buf)
			if err != nil || n != fxIO {
				return res, fmt.Errorf("fxmark %s: append %d: %w", c, i, err)
			}
			res.Ops++
			res.Bytes += int64(n)
			if i%8 == 7 {
				if err := f.Fsync(ctx); err != nil {
					return res, fmt.Errorf("fxmark %s: fsync: %w", c, err)
				}
				res.Ops++
			}
		}
		res.Ops++
		if err := f.Close(ctx); err != nil {
			return res, err
		}

	case FxMetaContended:
		for i := 0; i < cfg.Ops; i++ {
			name := fmt.Sprintf("/fx/meta/t%02d_%05d", thread, i)
			f, err := fs.Create(ctx, name)
			if err != nil {
				return res, fmt.Errorf("fxmark %s: create %s: %w", c, name, err)
			}
			res.Ops++
			if err := f.Close(ctx); err != nil {
				return res, err
			}
			res.Ops++
			if err := fs.Unlink(ctx, name); err != nil {
				return res, fmt.Errorf("fxmark %s: unlink %s: %w", c, name, err)
			}
			res.Ops++
		}

	default:
		return res, fmt.Errorf("fxmark: unknown case %q", c)
	}

	res.VirtualNS = ctx.Now() - start
	return res, nil
}
