package workloads

import (
	"bytes"
	"fmt"

	"repro/internal/sim"
	"repro/internal/vfs"
)

// fxmark-style scalability microbenchmarks: each case stresses one sharing
// level of the concurrency architecture, so throughput vs thread count
// shows which layer serialises. The cases mirror fxmark's (ATC'16)
// taxonomy on the operations WineFS cares about:
//
//	shared-read     N threads read random blocks of one shared file.
//	                Shared inode locks — must scale to bandwidth.
//	disjoint-write  N threads overwrite disjoint 2MiB regions of one
//	                preallocated shared file. Byte-range locks — must
//	                scale to bandwidth.
//	overlap-write   N threads overwrite the same 4KiB of one file.
//	                Conflicting ranges — must serialise.
//	private-append  each thread appends to its own file. Per-CPU
//	                journals and allocation groups — must scale.
//	meta-contended  N threads create+unlink in one shared directory.
//	                Exclusive parent-inode lock — serialises by design.
//
// Every thread must run with a distinct (id, CPU) ctx; with one thread per
// CPU group the work performed — ops, bytes, journal commits — is exactly
// reproducible, which is what lets BENCH_scaling.json gate on exact work
// counters.

// FxmarkCase names one scalability microbenchmark.
type FxmarkCase string

const (
	FxSharedRead    FxmarkCase = "shared-read"
	FxDisjointWrite FxmarkCase = "disjoint-write"
	FxOverlapWrite  FxmarkCase = "overlap-write"
	FxPrivateAppend FxmarkCase = "private-append"
	FxMetaContended FxmarkCase = "meta-contended"
)

// FxmarkCases lists every case in report order.
func FxmarkCases() []FxmarkCase {
	return []FxmarkCase{FxSharedRead, FxDisjointWrite, FxOverlapWrite, FxPrivateAppend, FxMetaContended}
}

const (
	// fxIO is the I/O unit.
	fxIO = 4096
	// fxRegion is each thread's slice of the shared file. 2MiB keeps the
	// preallocation on the aligned-extent path, so strict-mode overwrites
	// take the data-journal (in-place, range-locked) fast path rather
	// than copy-on-write.
	fxRegion = int64(2 << 20)
)

// FxmarkConfig sizes one thread's loop.
type FxmarkConfig struct {
	// Ops is the number of loop iterations per thread.
	Ops  int
	Seed uint64
}

func (c *FxmarkConfig) defaults() {
	if c.Ops == 0 {
		c.Ops = 100
	}
}

// FxmarkThreadResult reports one thread's run.
type FxmarkThreadResult struct {
	// Ops counts completed file-system operations (syscalls).
	Ops int64
	// Bytes counts payload bytes read or written.
	Bytes int64
	// VirtualNS is the thread's virtual time from first to last op.
	VirtualNS int64
}

// fxPattern fills p with the byte stream the shared file holds at absolute
// offset off, so any reader can verify any block without knowing who wrote
// it.
func fxPattern(p []byte, off int64) {
	for j := range p {
		x := off + int64(j)
		p[j] = byte(x*131>>4 + x + 7)
	}
}

// FxmarkSetup prepares the namespace for one case, single-threaded: the
// shared file is preallocated and patterned region by region, the shared
// directory pre-grown so the measured loops never allocate dirent blocks
// (keeping run-phase work counters independent of thread interleaving).
func FxmarkSetup(ctx *sim.Ctx, fs vfs.FS, c FxmarkCase, threads int, cfg FxmarkConfig) error {
	cfg.defaults()
	if err := fs.Mkdir(ctx, "/fx"); err != nil && err != vfs.ErrExist {
		return fmt.Errorf("fxmark setup: mkdir /fx: %w", err)
	}
	switch c {
	case FxSharedRead, FxDisjointWrite, FxOverlapWrite:
		f, err := fs.Create(ctx, "/fx/shared")
		if err != nil {
			return fmt.Errorf("fxmark setup: create shared: %w", err)
		}
		size := int64(threads) * fxRegion
		if err := f.Fallocate(ctx, 0, size); err != nil {
			return fmt.Errorf("fxmark setup: fallocate: %w", err)
		}
		buf := make([]byte, fxRegion)
		for off := int64(0); off < size; off += fxRegion {
			fxPattern(buf, off)
			if _, err := f.WriteAt(ctx, buf, off); err != nil {
				return fmt.Errorf("fxmark setup: pattern at %d: %w", off, err)
			}
		}
		if err := f.Close(ctx); err != nil {
			return err
		}
	case FxMetaContended:
		if err := fs.Mkdir(ctx, "/fx/meta"); err != nil && err != vfs.ErrExist {
			return fmt.Errorf("fxmark setup: mkdir /fx/meta: %w", err)
		}
		// Seed the directory's free dirent slots so the measured
		// create/unlink churn (at most `threads` live entries) never grows
		// the directory mid-run.
		for i := 0; i < 2*threads; i++ {
			name := fmt.Sprintf("/fx/meta/seed%04d", i)
			f, err := fs.Create(ctx, name)
			if err != nil {
				return fmt.Errorf("fxmark setup: seed create: %w", err)
			}
			if err := f.Close(ctx); err != nil {
				return err
			}
		}
		for i := 0; i < 2*threads; i++ {
			if err := fs.Unlink(ctx, fmt.Sprintf("/fx/meta/seed%04d", i)); err != nil {
				return fmt.Errorf("fxmark setup: seed unlink: %w", err)
			}
		}
	case FxPrivateAppend:
		// Threads create their own files.
	}
	return nil
}

// FxmarkThread runs one thread's loop. Threads for a run share fs and run
// concurrently, each with its own ctx.
func FxmarkThread(ctx *sim.Ctx, fs vfs.FS, thread int, c FxmarkCase, threads int, cfg FxmarkConfig) (FxmarkThreadResult, error) {
	cfg.defaults()
	var res FxmarkThreadResult
	start := ctx.Now()
	rng := sim.NewRand(cfg.Seed + uint64(thread)*2654435761 + 11)

	switch c {
	case FxSharedRead:
		f, err := fs.Open(ctx, "/fx/shared")
		if err != nil {
			return res, fmt.Errorf("fxmark %s: open: %w", c, err)
		}
		res.Ops++
		size := int64(threads) * fxRegion
		buf := make([]byte, fxIO)
		want := make([]byte, fxIO)
		for i := 0; i < cfg.Ops; i++ {
			off := rng.Int63n(size/fxIO) * fxIO
			n, err := f.ReadAt(ctx, buf, off)
			if err != nil || n != fxIO {
				return res, fmt.Errorf("fxmark %s: read at %d: %d bytes, %w", c, off, n, err)
			}
			res.Ops++
			res.Bytes += int64(n)
			fxPattern(want, off)
			if !bytes.Equal(buf, want) {
				return res, fmt.Errorf("fxmark %s: corrupt read at %d", c, off)
			}
		}
		res.Ops++ // close
		if err := f.Close(ctx); err != nil {
			return res, err
		}

	case FxDisjointWrite, FxOverlapWrite:
		f, err := fs.Open(ctx, "/fx/shared")
		if err != nil {
			return res, fmt.Errorf("fxmark %s: open: %w", c, err)
		}
		res.Ops++
		base := int64(thread) * fxRegion
		if c == FxOverlapWrite {
			base = 0 // every thread hammers the same 4KiB
		}
		buf := make([]byte, fxIO)
		for i := 0; i < cfg.Ops; i++ {
			off := base
			if c == FxDisjointWrite {
				off = base + int64(i)*fxIO%fxRegion
			}
			fxPattern(buf, off)
			n, err := f.WriteAt(ctx, buf, off)
			if err != nil || n != fxIO {
				return res, fmt.Errorf("fxmark %s: write at %d: %d bytes, %w", c, off, n, err)
			}
			res.Ops++
			res.Bytes += int64(n)
			if c == FxDisjointWrite && i%16 == 15 {
				// Read back our own region: nobody else writes it, so the
				// pattern must round-trip even mid-run.
				rbuf := make([]byte, fxIO)
				if n, err := f.ReadAt(ctx, rbuf, off); err != nil || n != fxIO {
					return res, fmt.Errorf("fxmark %s: verify read at %d: %w", c, off, err)
				}
				res.Ops++
				res.Bytes += fxIO
				if !bytes.Equal(rbuf, buf) {
					return res, fmt.Errorf("fxmark %s: corrupt readback at %d", c, off)
				}
			}
		}
		res.Ops++
		if err := f.Close(ctx); err != nil {
			return res, err
		}

	case FxPrivateAppend:
		name := fmt.Sprintf("/fx/p%03d", thread)
		f, err := fs.Create(ctx, name)
		if err != nil {
			return res, fmt.Errorf("fxmark %s: create: %w", c, err)
		}
		res.Ops++
		buf := make([]byte, fxIO)
		for i := 0; i < cfg.Ops; i++ {
			fxPattern(buf, int64(thread)<<32+int64(i)*fxIO)
			n, err := f.Append(ctx, buf)
			if err != nil || n != fxIO {
				return res, fmt.Errorf("fxmark %s: append %d: %w", c, i, err)
			}
			res.Ops++
			res.Bytes += int64(n)
			if i%8 == 7 {
				if err := f.Fsync(ctx); err != nil {
					return res, fmt.Errorf("fxmark %s: fsync: %w", c, err)
				}
				res.Ops++
			}
		}
		res.Ops++
		if err := f.Close(ctx); err != nil {
			return res, err
		}

	case FxMetaContended:
		for i := 0; i < cfg.Ops; i++ {
			name := fmt.Sprintf("/fx/meta/t%02d_%05d", thread, i)
			f, err := fs.Create(ctx, name)
			if err != nil {
				return res, fmt.Errorf("fxmark %s: create %s: %w", c, name, err)
			}
			res.Ops++
			if err := f.Close(ctx); err != nil {
				return res, err
			}
			res.Ops++
			if err := fs.Unlink(ctx, name); err != nil {
				return res, fmt.Errorf("fxmark %s: unlink %s: %w", c, name, err)
			}
			res.Ops++
		}

	default:
		return res, fmt.Errorf("fxmark: unknown case %q", c)
	}

	res.VirtualNS = ctx.Now() - start
	return res, nil
}
