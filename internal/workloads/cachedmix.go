package workloads

import (
	"bytes"
	"fmt"

	"repro/internal/sim"
	"repro/internal/vfs"
)

// CachedMix is the cache-effectiveness variant of ServerMix: each client
// populates a private working set, keeps the files open, and then re-reads
// them for several rounds before rewriting them in place. The re-read
// phase is reported separately — through internal/pagecache it is served
// from DRAM after the populate fills the cache, which is exactly the
// ≥5x-cheaper-per-read signal the winebench -cache sweep gates on. The
// workload runs against any vfs.FS, so the same loop measures the cached
// and uncached configurations byte-for-byte identically.

// CachedMixConfig sizes one client's run.
type CachedMixConfig struct {
	// Files is the working-set size (default 24).
	Files int
	// FileKB is each file's size in KiB (default 8 = two pages).
	FileKB int
	// Rounds is how many times the working set is re-read (default 3).
	Rounds int
	Seed   uint64
}

func (c *CachedMixConfig) defaults() {
	if c.Files == 0 {
		c.Files = 24
	}
	if c.FileKB == 0 {
		c.FileKB = 8
	}
	if c.Rounds == 0 {
		c.Rounds = 3
	}
}

// CachedMixResult reports one client's run, with the re-read phase broken
// out so per-read virtual cost can be compared across configurations.
type CachedMixResult struct {
	Ops          int64 // completed file-system operations
	Reads        int64 // re-read phase ReadAt calls
	ReadBytes    int64 // re-read phase bytes returned
	ReadNS       int64 // re-read phase virtual time
	PopulateNS   int64 // create+append phase virtual time
	RewriteNS    int64 // in-place rewrite + fsync + close phase virtual time
	BytesWritten int64 // logical bytes written (appends + rewrites)
}

// cachedMixPattern fills p with the oracle byte stream for (client, file,
// generation); every read verifies against it exactly.
func cachedMixPattern(p []byte, client, file, gen int) {
	for j := range p {
		p[j] = byte(client*151 + file*29 + gen*101 + j*11 + 3)
	}
}

// CachedMixClient runs one client's populate / re-read / rewrite loop on
// fs. Clients must use distinct ids; they may share an fs and run
// concurrently, each with its own ctx.
func CachedMixClient(ctx *sim.Ctx, fs vfs.FS, client int, cfg CachedMixConfig) (CachedMixResult, error) {
	cfg.defaults()
	var res CachedMixResult
	size := cfg.FileKB << 10

	if err := fs.Mkdir(ctx, "/cmix"); err != nil && err != vfs.ErrExist {
		return res, fmt.Errorf("cachedmix: mkdir /cmix: %w", err)
	}
	res.Ops++
	dir := fmt.Sprintf("/cmix/c%03d", client)
	if err := fs.Mkdir(ctx, dir); err != nil && err != vfs.ErrExist {
		return res, fmt.Errorf("cachedmix: mkdir %s: %w", dir, err)
	}
	res.Ops++

	// Populate: create and append every file; handles stay open — the hot
	// working set.
	files := make([]vfs.File, cfg.Files)
	t0 := ctx.Now()
	buf := make([]byte, size)
	for i := range files {
		name := fmt.Sprintf("%s/f%04d", dir, i)
		f, err := fs.Create(ctx, name)
		if err != nil {
			return res, fmt.Errorf("cachedmix: create %s: %w", name, err)
		}
		cachedMixPattern(buf, client, i, 0)
		if _, err := f.Append(ctx, buf); err != nil {
			return res, fmt.Errorf("cachedmix: append %s: %w", name, err)
		}
		res.Ops += 2
		res.BytesWritten += int64(size)
		files[i] = f
	}
	res.PopulateNS = ctx.Now() - t0

	// Re-read: the measured phase. Every byte is verified against the
	// oracle, so a cache serving stale or corrupt data fails loudly.
	want := make([]byte, size)
	rbuf := make([]byte, size)
	t0 = ctx.Now()
	for r := 0; r < cfg.Rounds; r++ {
		for i, f := range files {
			cachedMixPattern(want, client, i, 0)
			n, err := f.ReadAt(ctx, rbuf, 0)
			if err != nil {
				return res, fmt.Errorf("cachedmix: read %d round %d: %w", i, r, err)
			}
			if n != size || !bytes.Equal(rbuf[:n], want) {
				return res, fmt.Errorf("cachedmix: corrupt read of file %d round %d: %d/%d bytes", i, r, n, size)
			}
			res.Ops++
			res.Reads++
			res.ReadBytes += int64(n)
		}
	}
	res.ReadNS = ctx.Now() - t0

	// Rewrite in place (write-back through a cache), verify the new
	// generation reads back, then fsync and close everything.
	t0 = ctx.Now()
	for i, f := range files {
		cachedMixPattern(buf, client, i, 1)
		if _, err := f.WriteAt(ctx, buf, 0); err != nil {
			return res, fmt.Errorf("cachedmix: rewrite %d: %w", i, err)
		}
		res.Ops++
		res.BytesWritten += int64(size)
		cachedMixPattern(want, client, i, 1)
		n, err := f.ReadAt(ctx, rbuf, 0)
		if err != nil {
			return res, fmt.Errorf("cachedmix: reread %d: %w", i, err)
		}
		if n != size || !bytes.Equal(rbuf[:n], want) {
			return res, fmt.Errorf("cachedmix: corrupt read after rewrite of file %d", i)
		}
		res.Ops++
		if err := f.Fsync(ctx); err != nil {
			return res, fmt.Errorf("cachedmix: fsync %d: %w", i, err)
		}
		res.Ops++
		if err := f.Close(ctx); err != nil {
			return res, fmt.Errorf("cachedmix: close %d: %w", i, err)
		}
		res.Ops++
	}
	// A final stat pass over the closed files checks size coherence
	// through the attribute path.
	for i := 0; i < cfg.Files; i++ {
		name := fmt.Sprintf("%s/f%04d", dir, i)
		fi, err := fs.Stat(ctx, name)
		if err != nil {
			return res, fmt.Errorf("cachedmix: stat %s: %w", name, err)
		}
		if fi.Size != int64(size) {
			return res, fmt.Errorf("cachedmix: stat %s: size %d, want %d", name, fi.Size, size)
		}
		res.Ops++
	}
	res.RewriteNS = ctx.Now() - t0
	return res, nil
}
