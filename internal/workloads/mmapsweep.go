package workloads

import (
	"fmt"

	"repro/internal/geriatrix"
	"repro/internal/mmu"
	"repro/internal/perf"
	"repro/internal/sim"
	"repro/internal/vfs"
	"repro/internal/vmm"
)

// MmapSweep is the winebench -mmap workload: build an image (either
// clean-filled with large aligned files, or Geriatrix-aged to the same
// utilisation), carve a benchmark file out of the remaining space, map
// it through internal/vmm, and sweep it with random mapped reads. On the
// unaged image the file's extents tile 2MiB chunks, every fault is a
// hugepage fault and the sweep runs at TLB-hit speed; on the aged image
// the allocator hands back fragments, faults are 4KiB base faults and
// every access pays page-walk traffic — the paper's Figure 1 aging gap,
// measured at the vmm API instead of inside experiments. An optional
// write phase follows with SyncPeriodic msync batching so the durability
// counters are exercised by the same sweep.

// MmapSweepConfig sizes one sweep.
type MmapSweepConfig struct {
	// FileBytes is the benchmark file size (default 32MiB; rounded up to
	// a hugepage multiple).
	FileBytes int64
	// Reads is the number of random mapped reads (default 20000).
	Reads int
	// ReadSize is bytes per read (default 64, one cache line — the
	// paper's random-array-access shape, where translation cost is the
	// whole story).
	ReadSize int
	// Aged selects a Geriatrix-aged image instead of the clean fill.
	Aged bool
	// Util is the image utilisation both conditions reach (default 0.6).
	Util float64
	// ChurnFactor is the Geriatrix churn for the aged condition (default
	// 0.5, the quick-mode setting).
	ChurnFactor float64
	// WritePhase adds a shared-mapping write pass with periodic msync.
	WritePhase bool
	Seed       uint64
}

func (c MmapSweepConfig) withDefaults() MmapSweepConfig {
	if c.FileBytes <= 0 {
		c.FileBytes = 32 << 20
	}
	c.FileBytes = (c.FileBytes + mmu.HugePage - 1) / mmu.HugePage * mmu.HugePage
	if c.Reads <= 0 {
		c.Reads = 20000
	}
	if c.ReadSize <= 0 {
		c.ReadSize = 64
	}
	if c.Util == 0 {
		c.Util = 0.6
	}
	if c.ChurnFactor == 0 {
		c.ChurnFactor = 0.5
	}
	return c
}

// MmapSweepResult is one sweep's outcome.
type MmapSweepResult struct {
	// SetupNS covers image preparation and the map itself.
	SetupNS int64
	// MapNS is the mmap call alone (fault time is in SweepNS).
	MapNS int64
	// SweepNS is the virtual time of the random-read phase.
	SweepNS int64
	// NSPerRead is SweepNS / Reads.
	NSPerRead float64
	// WriteNS is the optional write phase's virtual time.
	WriteNS int64
	// HugeChunks/TotalChunks is hugepage coverage over the chunks the
	// sweep faulted (TotalChunks == the file's chunk count once every
	// chunk has been touched).
	HugeChunks  int
	TotalChunks int
	// Reads/ReadBytes echo the work done (baseline-gated exactly).
	Reads     int64
	ReadBytes int64
	// Counters snapshots the measured phases' perf counters (fault mix,
	// TLB traffic, vmm events); setup/aging is excluded.
	Counters perf.Counters
}

// HugeCoverage is HugeChunks/TotalChunks in [0,1].
func (r MmapSweepResult) HugeCoverage() float64 {
	if r.TotalChunks == 0 {
		return 0
	}
	return float64(r.HugeChunks) / float64(r.TotalChunks)
}

// RunMmapSweep prepares the image on fs (which must be freshly made) and
// runs the sweep. ctx drives setup; the measured phases run on a fresh
// bench context advanced past setup so calendar contention from aging
// can't bleed into the numbers (the fig1 methodology).
func RunMmapSweep(ctx *sim.Ctx, fs vfs.FS, cfg MmapSweepConfig) (MmapSweepResult, error) {
	cfg = cfg.withDefaults()
	var res MmapSweepResult
	setupStart := ctx.Now()

	if cfg.Aged {
		ager := geriatrix.New(fs, geriatrix.Config{
			TargetUtil:  cfg.Util,
			ChurnFactor: cfg.ChurnFactor,
			Seed:        cfg.Seed + 101,
		})
		if _, err := ager.Run(ctx); err != nil {
			return res, fmt.Errorf("mmapsweep: age: %w", err)
		}
	} else {
		if err := fillAligned(ctx, fs, cfg.Util); err != nil {
			return res, fmt.Errorf("mmapsweep: fill: %w", err)
		}
	}

	f, err := fs.Create(ctx, "/mmap.bench")
	if err != nil {
		return res, err
	}
	if err := f.Fallocate(ctx, 0, cfg.FileBytes); err != nil {
		return res, fmt.Errorf("mmapsweep: fallocate %d bytes at util %.2f: %w", cfg.FileBytes, cfg.Util, err)
	}
	// Prewrite the whole file so every block holds data: file systems
	// that fallocate unwritten extents (ext4-style) would otherwise zero
	// lazily in the fault handler, and that setup cost would pollute the
	// measured sweep on some file systems but not others.
	fill := make([]byte, 1<<20)
	for i := range fill {
		fill[i] = byte(i * 7)
	}
	for off := int64(0); off < cfg.FileBytes; off += int64(len(fill)) {
		if _, err := f.WriteAt(ctx, fill, off); err != nil {
			return res, fmt.Errorf("mmapsweep: prewrite at %d: %w", off, err)
		}
	}
	res.SetupNS = ctx.Now() - setupStart

	// Measured phases on a fresh context past every setup booking.
	bench := sim.NewCtx(97, 0)
	bench.AdvanceTo(ctx.Now())

	mapStart := bench.Now()
	m, err := vmm.Map(bench, f, cfg.FileBytes, vmm.Config{
		Mode:        vmm.ModeShared,
		Sync:        vmm.SyncPeriodic,
		MapFullFile: true,
	})
	if err != nil {
		return res, err
	}
	res.MapNS = bench.Now() - mapStart

	// Random read sweep: cold mapping, so demand faults are part of the
	// per-access price — exactly what differs between the two images.
	rng := sim.NewRand(cfg.Seed + 7)
	buf := make([]byte, cfg.ReadSize)
	slots := cfg.FileBytes / int64(cfg.ReadSize)
	sweepStart := bench.Now()
	for i := 0; i < cfg.Reads; i++ {
		off := rng.Int63n(slots) * int64(cfg.ReadSize)
		if err := m.Read(bench, buf, off); err != nil {
			return res, fmt.Errorf("mmapsweep: read %d at %d: %w", i, off, err)
		}
		res.Reads++
		res.ReadBytes += int64(cfg.ReadSize)
	}
	res.SweepNS = bench.Now() - sweepStart
	res.NSPerRead = float64(res.SweepNS) / float64(res.Reads)

	if cfg.WritePhase {
		writeStart := bench.Now()
		val := make([]byte, cfg.ReadSize)
		for i := range val {
			val[i] = byte(i)
		}
		for i := 0; i < cfg.Reads/10; i++ {
			off := rng.Int63n(slots) * int64(cfg.ReadSize)
			if err := m.Write(bench, val, off); err != nil {
				return res, fmt.Errorf("mmapsweep: write %d: %w", i, err)
			}
		}
		if err := m.Msync(bench, 0, -1); err != nil {
			return res, err
		}
		res.WriteNS = bench.Now() - writeStart
	}

	res.HugeChunks, res.TotalChunks = m.FaultedChunks()
	if err := m.Close(bench); err != nil {
		return res, err
	}
	res.Counters = *bench.Counters
	return res, nil
}

// fillAligned brings utilisation up with hugepage-multiple sequential
// files and no deletes — the unaged condition, under which the allocator
// keeps handing out whole aligned extents.
func fillAligned(ctx *sim.Ctx, fs vfs.FS, util float64) error {
	i := 0
	for {
		st := fs.StatFS(ctx)
		if 1-float64(st.FreeBlocks)/float64(st.TotalBlocks) >= util {
			return nil
		}
		f, err := fs.Create(ctx, fmt.Sprintf("/mfill%05d", i))
		if err != nil {
			return err
		}
		if err := f.Fallocate(ctx, 0, 8<<20); err != nil {
			if err == vfs.ErrNoSpace {
				return nil
			}
			return err
		}
		i++
	}
}
