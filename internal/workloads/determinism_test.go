package workloads_test

import (
	"testing"

	"repro/internal/perf"
	"repro/internal/pmem"
	"repro/internal/sim"
	"repro/internal/winefs"
	"repro/internal/workloads"
)

// goldenFingerprint captures everything a batching or scheduling bug could
// perturb: the final virtual clock, every perf counter, and the structured
// results of each phase (all scalar fields, so == is a full comparison).
type goldenFingerprint struct {
	clock    int64
	counters perf.Counters
	fxmark   workloads.FxmarkThreadResult
	sweep    workloads.MmapSweepResult
}

// goldenJob runs one self-contained mixed workload — fxmark file churn
// through the VFS layer, then an mmap sweep with a write phase through the
// MMU fine/stream paths — on its own device and FS, audits the FS, and
// returns the fingerprint. exact selects the per-line reference arm of the
// MMU charging path.
func goldenJob(t *testing.T, i int, exact bool) goldenFingerprint {
	t.Helper()
	ctx := sim.NewCtx(100+i, i%4)
	dev := pmem.New(192 << 20)
	defer dev.Release()
	fs, err := winefs.Mkfs(ctx, dev, winefs.Options{CPUs: 4})
	if err != nil {
		t.Fatalf("job %d: mkfs: %v", i, err)
	}
	fs.AddressSpace().Exact = exact

	var fp goldenFingerprint
	c := workloads.FxmarkCases()[i%len(workloads.FxmarkCases())]
	cfg := workloads.FxmarkConfig{Ops: 60, Seed: 0xD0_0D + uint64(i)}
	if err := workloads.FxmarkSetup(ctx, fs, c, 1, cfg); err != nil {
		t.Fatalf("job %d: fxmark setup: %v", i, err)
	}
	fp.fxmark, err = workloads.FxmarkThread(ctx, fs, 0, c, 1, cfg)
	if err != nil {
		t.Fatalf("job %d: fxmark: %v", i, err)
	}

	fp.sweep, err = workloads.RunMmapSweep(ctx, fs, workloads.MmapSweepConfig{
		FileBytes:  8 << 20,
		Reads:      1500,
		WritePhase: true,
		Seed:       uint64(i) + 1,
	})
	if err != nil {
		t.Fatalf("job %d: mmap sweep: %v", i, err)
	}

	if err := fs.Audit(ctx); err != nil {
		t.Fatalf("job %d: audit: %v", i, err)
	}
	fp.clock = ctx.Now()
	fp.counters = *ctx.Counters
	return fp
}

// TestEngineDeterminismGolden is the contract the whole fast-path refactor
// hangs on: the batched charging path, the exact per-line reference path,
// and host-parallel execution must all produce bit-identical virtual
// results. Three arms run the same job set:
//
//	A: Exact=true, sequential      — the pre-refactor reference semantics
//	B: Exact=false, sequential     — batched charging
//	C: Exact=false, ParallelRunner — batched charging on host threads
//
// Any divergence in a clock, a counter, or a phase result is a bug in a
// batch-collapse argument (A vs B) or a determinism leak through shared
// host state (B vs C).
func TestEngineDeterminismGolden(t *testing.T) {
	const jobs = 5 // covers every fxmark case once

	exact := make([]goldenFingerprint, jobs)
	batched := make([]goldenFingerprint, jobs)
	parallel := make([]goldenFingerprint, jobs)
	for i := 0; i < jobs; i++ {
		exact[i] = goldenJob(t, i, true)
	}
	for i := 0; i < jobs; i++ {
		batched[i] = goldenJob(t, i, false)
	}
	var pr sim.ParallelRunner
	pr.Run(jobs, func(i int) {
		parallel[i] = goldenJob(t, i, false)
	})

	for i := 0; i < jobs; i++ {
		if exact[i] != batched[i] {
			t.Errorf("job %d: batched path diverges from exact path:\n exact:   %+v\n batched: %+v",
				i, exact[i], batched[i])
		}
		if batched[i] != parallel[i] {
			t.Errorf("job %d: parallel run diverges from sequential run:\n sequential: %+v\n parallel:   %+v",
				i, batched[i], parallel[i])
		}
	}
	// Sanity: the jobs actually exercised the interesting machinery. The
	// sweep's measured phases run on their own bench context, so the MMU
	// traffic shows up in the sweep result's counters, not the job ctx.
	for i, fp := range batched {
		if fp.sweep.Counters.PageFaults == 0 && fp.sweep.Counters.HugeFaults == 0 {
			t.Errorf("job %d: no faults taken — sweep did not exercise the MMU", i)
		}
		if fp.sweep.Counters.TLBHits == 0 || fp.sweep.Counters.LLCMisses == 0 {
			t.Errorf("job %d: cache counters silent — batched charging not exercised", i)
		}
		if fp.counters.JournalCommits == 0 {
			t.Errorf("job %d: no journal commits — fxmark churn did not reach the FS", i)
		}
	}
}
