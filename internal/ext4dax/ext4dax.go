// Package ext4dax models ext4 with DAX, as the paper characterises it:
//
//   - a contiguity-first ("goal") multi-block allocator that prefers
//     extending a file's last extent over everything else, with mballoc's
//     best-effort alignment for large requests — which is why a clean
//     ext4-DAX gets hugepages but an aged one "uses only 3k of the 12k
//     aligned extents available" (§2.5);
//   - JBD2 block journaling whose commit is a stop-the-world flush forced
//     by fsync — the costly-fsync and poor-scalability behaviour of
//     Figures 6, 9 and 10;
//   - metadata-only (relaxed) crash consistency;
//   - zero-on-page-fault for fallocated space, making faults expensive
//     (Table 2 discussion: "ext4-DAX does zero-out of pages on a page
//     fault and not fallocate()").
package ext4dax

import (
	"repro/internal/alloc"
	"repro/internal/fsbase"
	"repro/internal/pmem"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// dataStartBlk leaves room for "static" metadata (superblock, group
// descriptors, inode tables) and intentionally starts the data area off a
// hugepage boundary, as on a real formatted partition.
const dataStartBlk = 37

// New mounts a fresh ext4-DAX instance over dev.
func New(dev *pmem.Device) *fsbase.FS {
	total := dev.Size()/fsbase.BlockSize - dataStartBlk
	h := &hooks{
		model: dev.Model(),
		pool:  fsbase.NewLockedPool(dataStartBlk, total),
		jbd2:  fsbase.NewJBD2(dev.Model()),
	}
	return fsbase.New(dev, h)
}

type hooks struct {
	model *pmem.CostModel
	pool  *fsbase.LockedPool
	jbd2  *fsbase.JBD2
}

func (h *hooks) Name() string                { return "ext4-DAX" }
func (h *hooks) Mode() vfs.ConsistencyMode   { return vfs.Relaxed }
func (h *hooks) TotalBlocks() int64          { return h.pool.Total() }
func (h *hooks) FreeBlocks() int64           { return h.pool.Free() }
func (h *hooks) FreeExtents() []alloc.Extent { return h.pool.Extents() }

func (h *hooks) Alloc(ctx *sim.Ctx, blocks int64, hint fsbase.AllocHint) ([]alloc.Extent, error) {
	ex, ok := h.pool.Take(ctx, blocks, fsbase.Strategy{
		Goal: hint.Goal,
		// mballoc normalises large requests to power-of-two boundaries,
		// which yields hugepage alignment on a clean file system — but the
		// search covers only the block groups near the stream goal, and the
		// goal (locality) attempt comes first: both squander aligned
		// extents as the file system ages (§2.5).
		TryAligned:  hint.Large,
		AlignWindow: 16 * alloc.BlocksPerHuge,
		NextFit:     true,
	})
	if !ok {
		return nil, vfs.ErrNoSpace
	}
	return ex, nil
}

func (h *hooks) Free(ctx *sim.Ctx, ex []alloc.Extent) { h.pool.Release(ctx, ex) }

func (h *hooks) MetaOp(ctx *sim.Ctx, n *fsbase.Node, entries int, kind fsbase.MetaKind) {
	h.jbd2.Log(ctx, entries)
}

// ext4's hashed directories resolve in near-constant time.
func (h *hooks) DirLookup(ctx *sim.Ctx, entries int) { ctx.Advance(180) }

func (h *hooks) Overwrite(ctx *sim.Ctx, n *fsbase.Node, off, length int64) fsbase.OverwriteAction {
	return fsbase.InPlace // metadata-only consistency
}

func (h *hooks) DataWrite(ctx *sim.Ctx, n *fsbase.Node, length int64) {}

func (h *hooks) Fsync(ctx *sim.Ctx, n *fsbase.Node, dirty int64) {
	h.jbd2.Commit(ctx, dirty)
}

func (h *hooks) ZeroOnFault() bool                     { return true }
func (h *hooks) OnCreate(ctx *sim.Ctx, n *fsbase.Node) {}
func (h *hooks) OnDelete(ctx *sim.Ctx, n *fsbase.Node) {}
