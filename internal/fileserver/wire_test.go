package fileserver

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"repro/internal/vfs"
	"repro/internal/winefs"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello, wire")
	if err := WriteFrame(&buf, 42, uint8(opRead), payload); err != nil {
		t.Fatalf("WriteFrame: %v", err)
	}
	id, code, got, err := ReadFrame(&buf)
	if err != nil {
		t.Fatalf("ReadFrame: %v", err)
	}
	if id != 42 || op(code) != opRead || !bytes.Equal(got, payload) {
		t.Fatalf("round trip = (%d, %d, %q)", id, code, got)
	}
}

func TestFrameRejectsHostileLength(t *testing.T) {
	// A corrupt length prefix must not cause a giant allocation.
	buf := bytes.NewBuffer([]byte{0xff, 0xff, 0xff, 0xff})
	if _, _, _, err := ReadFrame(buf); err == nil {
		t.Fatal("oversized frame accepted")
	}
	buf = bytes.NewBuffer([]byte{1, 0, 0, 0})
	if _, _, _, err := ReadFrame(buf); err == nil {
		t.Fatal("undersized frame accepted")
	}
}

func TestEncDecRoundTrip(t *testing.T) {
	var e enc
	e.u8(7)
	e.u32(1 << 20)
	e.u64(1 << 40)
	e.i64(-5)
	e.str("päth/σ")
	e.bytes([]byte{1, 2, 3})
	d := newDec(e.b)
	if d.u8() != 7 || d.u32() != 1<<20 || d.u64() != 1<<40 || d.i64() != -5 {
		t.Fatal("numeric round trip failed")
	}
	if d.str() != "päth/σ" || !bytes.Equal(d.bytes(), []byte{1, 2, 3}) {
		t.Fatal("string/bytes round trip failed")
	}
	if !d.ok() {
		t.Fatal("dec reported bad on valid payload")
	}
	// Reading past the end flips bad instead of panicking.
	if d.u64() != 0 || d.ok() {
		t.Fatal("out-of-bounds read not flagged")
	}
}

func TestDecTruncated(t *testing.T) {
	var e enc
	e.str("abcdef")
	d := newDec(e.b[:5]) // length says 6, payload holds 1
	if d.str() != "" || d.ok() {
		t.Fatal("truncated string not flagged")
	}
}

// TestStatusErrorMapping: every sentinel of PR 1's robustness ladder must
// survive the wire as the identical bare error, including when wrapped.
func TestStatusErrorMapping(t *testing.T) {
	cases := []error{
		vfs.ErrNotExist, vfs.ErrExist, vfs.ErrNotDir, vfs.ErrIsDir,
		vfs.ErrNotEmpty, vfs.ErrNoSpace, vfs.ErrClosed, vfs.ErrReadOnly,
		vfs.ErrIO, winefs.ErrTxOverflow,
	}
	for _, want := range cases {
		for _, sent := range []error{want, fmt.Errorf("%w: media detail", want)} {
			st, msg := statusFor(sent)
			got := errFor(st, msg)
			// The == comparison is deliberate: workload code compares
			// sentinels with != / ==, so the client must return the bare
			// error value.
			if got != want {
				t.Errorf("statusFor/errFor(%v) = %v, want identical sentinel", sent, want)
			}
		}
	}
	if st, _ := statusFor(nil); st != statusOK {
		t.Error("nil must map to statusOK")
	}
	st, msg := statusFor(errors.New("weird backend failure"))
	if st != statusError {
		t.Errorf("unmapped error got status %d", st)
	}
	if got := errFor(st, msg); got == nil || got.Error() != "fileserver: remote: weird backend failure" {
		t.Errorf("generic error round trip = %v", got)
	}
	for _, st := range []status{statusBadHandle, statusBadRequest, statusShutdown} {
		if errFor(st, "") == nil {
			t.Errorf("status %d mapped to nil", st)
		}
	}
}
