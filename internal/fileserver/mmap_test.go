package fileserver

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/pagecache"
	"repro/internal/pmem"
	"repro/internal/sim"
	"repro/internal/vfs"
	"repro/internal/vmm"
)

// TestServerMapRevokesClientLease covers the mmap/lease coherence rule on
// the server side: a server-local process mapping a file must revoke the
// client's lease (flushing its buffered writes) at attach time, and while
// the mapping lives the server refuses new leases on that ino, so every
// client access is pass-through and sees the mapping's stores.
func TestServerMapRevokesClientLease(t *testing.T) {
	srv, pl, fs := newServerFS(t, pmem.New(256<<20), Config{})

	clA := dialT(t, pl)
	cacheA := pagecache.New(clA, pagecache.Config{})
	ctxA := sim.NewCtx(300, 0)

	const size = 2 * pagecache.PageSize
	gen0 := make([]byte, size)
	gen1 := make([]byte, size)
	leasePattern(gen0, 0)
	leasePattern(gen1, 1)

	fA, err := cacheA.Create(ctxA, "/shared")
	if err != nil {
		t.Fatalf("A create: %v", err)
	}
	if _, err := fA.Append(ctxA, gen0); err != nil {
		t.Fatalf("A append: %v", err)
	}
	if _, err := fA.WriteAt(ctxA, gen1, 0); err != nil {
		t.Fatalf("A rewrite: %v", err)
	}
	if st := cacheA.Stats(); st.DirtyPages != 2 {
		t.Fatalf("A DirtyPages = %d, want 2 buffered pages", st.DirtyPages)
	}

	// A server-local process maps the file. The attach hook must revoke
	// A's write lease and wait out the flush before the map completes.
	sctx := sim.NewCtx(310, 1)
	srvFile, err := fs.Open(sctx, "/shared")
	if err != nil {
		t.Fatalf("server open: %v", err)
	}
	m, err := vmm.Map(sctx, srvFile, size, vmm.Config{Mode: vmm.ModeShared, MapFullFile: true})
	if err != nil {
		t.Fatalf("server map: %v", err)
	}
	if st := cacheA.Stats(); st.Revokes != 1 || st.DirtyPages != 0 {
		t.Fatalf("after map attach: A stats %+v, want 1 revoke and 0 dirty", st)
	}
	got := make([]byte, size)
	if err := m.Read(sctx, got, 0); err != nil {
		t.Fatalf("mapped read: %v", err)
	}
	if !bytes.Equal(got, gen1) {
		if bytes.Equal(got, gen0) {
			t.Fatal("mapping read STALE gen0: client's buffered write was lost")
		}
		t.Fatal("mapping read a mix of generations")
	}
	if err := srv.CheckLeaseInvariant(); err != nil {
		t.Fatalf("invariant after map revoke: %v", err)
	}
	if n := fs.MappedCount(srvFile.Ino()); n != 1 {
		t.Fatalf("MappedCount = %d, want 1", n)
	}

	// While mapped, a fresh client open cannot lease: its reads are
	// pass-through and observe the mapping's stores immediately.
	clB := dialT(t, pl)
	cacheB := pagecache.New(clB, pagecache.Config{})
	ctxB := sim.NewCtx(320, 2)
	fB, err := cacheB.Open(ctxB, "/shared")
	if err != nil {
		t.Fatalf("B open: %v", err)
	}
	gen2 := make([]byte, pagecache.PageSize)
	leasePattern(gen2, 2)
	if err := m.Write(sctx, gen2, 0); err != nil {
		t.Fatalf("mapped write: %v", err)
	}
	if err := m.Msync(sctx, 0, -1); err != nil {
		t.Fatalf("msync: %v", err)
	}
	rd := make([]byte, pagecache.PageSize)
	if _, err := fB.ReadAt(ctxB, rd, 0); err != nil {
		t.Fatalf("B read: %v", err)
	}
	if !bytes.Equal(rd, gen2) {
		t.Fatal("B read stale bytes while the ino was mapped (a lease was granted over a live mapping)")
	}
	if hits := cacheB.Stats().Hits; hits != 0 {
		t.Fatalf("B cache hits = %d while ino mapped, want pure pass-through", hits)
	}

	// Teardown: the last detach unpins the ino and leases work again.
	if err := m.Close(sctx); err != nil {
		t.Fatalf("unmap: %v", err)
	}
	if n := fs.MappedCount(srvFile.Ino()); n != 0 {
		t.Fatalf("MappedCount after unmap = %d, want 0", n)
	}
	fC, err := cacheB.Open(ctxB, "/shared")
	if err != nil {
		t.Fatalf("open after unmap: %v", err)
	}
	if _, err := fC.ReadAt(ctxB, rd, 0); err != nil {
		t.Fatalf("read after unmap: %v", err)
	}
	if _, err := fC.ReadAt(ctxB, rd, 0); err != nil {
		t.Fatalf("reread after unmap: %v", err)
	}
	if hits := cacheB.Stats().Hits; hits == 0 {
		t.Fatal("no cache hits after unmap: lease still refused?")
	}
	fC.Close(ctxB)
	fB.Close(ctxB)
}

// TestRemoteMapNotSupported: a remote mount cannot be memory-mapped —
// vmm.Map reports the typed not-supported error both on a raw client
// handle and through the client page cache.
func TestRemoteMapNotSupported(t *testing.T) {
	_, pl, _ := newServerFS(t, pmem.New(128<<20), Config{})
	cl := dialT(t, pl)
	ctx := sim.NewCtx(400, 0)

	f, err := cl.Create(ctx, "/r")
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := f.Append(ctx, make([]byte, 4096)); err != nil {
		t.Fatalf("append: %v", err)
	}
	if _, err := vmm.Map(ctx, f, 4096, vmm.Config{}); !errors.Is(err, vfs.ErrNotSupported) {
		t.Fatalf("map of remote file: err = %v, want ErrNotSupported", err)
	}

	c := pagecache.New(cl, pagecache.Config{})
	cf, err := c.Open(ctx, "/r")
	if err != nil {
		t.Fatalf("cached open: %v", err)
	}
	if _, err := vmm.Map(ctx, cf, 4096, vmm.Config{}); !errors.Is(err, vfs.ErrNotSupported) {
		t.Fatalf("map of cached remote file: err = %v, want ErrNotSupported", err)
	}
}
