package fileserver

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/pmem"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vfs"
	"repro/internal/winefs"
	"repro/internal/workloads"
)

const testCPUs = 8

// newServer formats a fresh WineFS, wraps it in a Server on an in-memory
// listener, and tears everything down when the test ends.
func newServer(t *testing.T, dev *pmem.Device, cfg Config) (*Server, *PipeListener) {
	t.Helper()
	ctx := sim.NewCtx(1, 0)
	fs, err := winefs.Mkfs(ctx, dev, winefs.Options{CPUs: testCPUs, Mode: vfs.Strict})
	if err != nil {
		t.Fatalf("mkfs: %v", err)
	}
	if cfg.CPUs == 0 {
		cfg.CPUs = testCPUs
	}
	srv := New(fs, cfg)
	pl := NewPipeListener()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(pl) }()
	t.Cleanup(func() {
		srv.Shutdown()
		if err := <-serveErr; err != nil {
			t.Errorf("Serve returned %v after shutdown", err)
		}
	})
	return srv, pl
}

func dialT(t *testing.T, pl *PipeListener) *Client {
	t.Helper()
	conn, err := pl.Dial()
	if err != nil {
		t.Fatalf("pipe dial: %v", err)
	}
	cl, err := Dial(conn)
	if err != nil {
		t.Fatalf("handshake: %v", err)
	}
	return cl
}

// waitFor polls cond (wall-clock, for cross-goroutine teardown) briefly.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestRemoteBasicOps walks the whole surface of the protocol with one
// client and checks values match a local mount's semantics.
func TestRemoteBasicOps(t *testing.T) {
	_, pl := newServer(t, pmem.New(256<<20), Config{})
	cl := dialT(t, pl)
	ctx := sim.NewCtx(100, 0)

	if cl.Name() != "WineFS" {
		t.Errorf("Name() = %q", cl.Name())
	}
	if cl.Mode() != vfs.Strict {
		t.Errorf("Mode() = %v", cl.Mode())
	}

	if err := cl.Mkdir(ctx, "/d"); err != nil {
		t.Fatalf("mkdir: %v", err)
	}
	if err := cl.Mkdir(ctx, "/d"); err != vfs.ErrExist {
		t.Fatalf("second mkdir = %v, want bare vfs.ErrExist", err)
	}
	if _, err := cl.Open(ctx, "/d/missing"); err != vfs.ErrNotExist {
		t.Fatalf("open missing = %v, want bare vfs.ErrNotExist", err)
	}

	f, err := cl.Create(ctx, "/d/f")
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	data := []byte("the quick brown fox")
	if n, err := f.Append(ctx, data); err != nil || n != len(data) {
		t.Fatalf("append = %d, %v", n, err)
	}
	if f.Size() != int64(len(data)) {
		t.Errorf("cached size = %d, want %d", f.Size(), len(data))
	}
	if err := f.Fsync(ctx); err != nil {
		t.Fatalf("fsync: %v", err)
	}
	buf := make([]byte, 64)
	n, err := f.ReadAt(ctx, buf, 0)
	if err != nil || !bytes.Equal(buf[:n], data) {
		t.Fatalf("read = %q, %v", buf[:n], err)
	}
	if n, err := f.ReadAt(ctx, buf, int64(len(data))); n != 0 || err != nil {
		t.Fatalf("read at EOF = %d, %v", n, err)
	}
	if _, err := f.WriteAt(ctx, []byte("THE"), 0); err != nil {
		t.Fatalf("writeat: %v", err)
	}
	if err := f.Fallocate(ctx, 0, 8192); err != nil {
		t.Fatalf("fallocate: %v", err)
	}
	if f.Size() != 8192 {
		t.Errorf("size after fallocate = %d", f.Size())
	}
	if err := f.Truncate(ctx, 3); err != nil {
		t.Fatalf("truncate: %v", err)
	}
	if f.Size() != 3 {
		t.Errorf("size after truncate = %d", f.Size())
	}
	if err := f.SetXattr(ctx, vfs.XattrAligned, []byte("1")); err != nil {
		t.Fatalf("setxattr: %v", err)
	}
	// WineFS models the alignment attribute as a flag: Get reports "1".
	if v, ok := f.GetXattr(ctx, vfs.XattrAligned); !ok || !bytes.Equal(v, []byte("1")) {
		t.Fatalf("getxattr = %v, %v", v, ok)
	}
	if _, ok := f.GetXattr(ctx, "user.nope"); ok {
		t.Fatal("getxattr of missing attr reported ok")
	}
	if _, err := f.Mmap(ctx, 4096); !errors.Is(err, ErrNotSupported) {
		t.Fatalf("mmap = %v, want ErrNotSupported", err)
	}

	fi, err := cl.Stat(ctx, "/d/f")
	if err != nil || fi.IsDir || fi.Size != 3 {
		t.Fatalf("stat = %+v, %v", fi, err)
	}
	if fi.Ino != f.Ino() {
		t.Errorf("stat ino %d != handle ino %d", fi.Ino, f.Ino())
	}
	ents, err := cl.ReadDir(ctx, "/d")
	if err != nil || len(ents) != 1 || ents[0].Name != "f" {
		t.Fatalf("readdir = %+v, %v", ents, err)
	}
	sfs := cl.StatFS(ctx)
	if sfs.TotalBlocks == 0 || sfs.Files == 0 {
		t.Errorf("statfs = %+v", sfs)
	}
	if err := f.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := cl.Rename(ctx, "/d/f", "/d/g"); err != nil {
		t.Fatalf("rename: %v", err)
	}
	if err := cl.Unlink(ctx, "/d/g"); err != nil {
		t.Fatalf("unlink: %v", err)
	}
	if err := cl.Rmdir(ctx, "/d"); err != nil {
		t.Fatalf("rmdir: %v", err)
	}
	// The server must have charged virtual time and the client received it.
	if ctx.Now() == 0 {
		t.Error("client ctx never advanced: virtual-time bridging broken")
	}
	if err := cl.Unmount(ctx); err != nil {
		t.Fatalf("unmount: %v", err)
	}
}

// TestRemotePathsConfined: hostile dot-segment paths sent straight over
// the wire must stay inside the export root instead of escaping it.
func TestRemotePathsConfined(t *testing.T) {
	srv, pl := newServer(t, pmem.New(128<<20), Config{})
	_ = srv
	cl := dialT(t, pl)
	ctx := sim.NewCtx(100, 0)

	if err := cl.Mkdir(ctx, "/jail"); err != nil {
		t.Fatalf("mkdir: %v", err)
	}
	f, err := cl.Create(ctx, "/jail/../../../escaped")
	if err != nil {
		t.Fatalf("create with traversal: %v", err)
	}
	if _, err := f.Append(ctx, []byte("x")); err != nil {
		t.Fatalf("append: %v", err)
	}
	f.Close(ctx)
	// The traversal clamps at the export root: the file landed at /escaped.
	if _, err := cl.Stat(ctx, "/escaped"); err != nil {
		t.Fatalf("confined path not found at /escaped: %v", err)
	}
	// A parent that genuinely doesn't exist still fails cleanly.
	if _, err := cl.Create(ctx, "/jail/../nodir/x"); err != vfs.ErrNotExist {
		t.Fatalf("create under missing parent = %v, want vfs.ErrNotExist", err)
	}
	ents, err := cl.ReadDir(ctx, "/")
	if err != nil {
		t.Fatalf("readdir /: %v", err)
	}
	for _, e := range ents {
		if e.Name == ".." || e.Name == "." {
			t.Fatalf("dot entry leaked into the namespace: %+v", e)
		}
	}
	cl.Unmount(ctx)
}

// TestRemoteRootPathRejected: untrusted wire paths that clean to "/" must
// be refused by the server with the same vfs.ErrExist a local mount
// returns, not create a nameless file or crash the session.
func TestRemoteRootPathRejected(t *testing.T) {
	_, pl := newServer(t, pmem.New(128<<20), Config{})
	cl := dialT(t, pl)
	ctx := sim.NewCtx(100, 0)

	for _, p := range []string{"/", "", "//", "/.", "/..", "/a/.."} {
		if _, err := cl.Create(ctx, p); err != vfs.ErrExist {
			t.Errorf("remote Create(%q) = %v, want bare vfs.ErrExist", p, err)
		}
		if err := cl.Mkdir(ctx, p); err != vfs.ErrExist {
			t.Errorf("remote Mkdir(%q) = %v, want bare vfs.ErrExist", p, err)
		}
		if err := cl.Unlink(ctx, p); err != vfs.ErrExist {
			t.Errorf("remote Unlink(%q) = %v, want bare vfs.ErrExist", p, err)
		}
	}
	// The session survived the hostile paths and the namespace is clean.
	ents, err := cl.ReadDir(ctx, "/")
	if err != nil {
		t.Fatalf("readdir after hostile paths: %v", err)
	}
	for _, e := range ents {
		if e.Name == "" {
			t.Fatalf("empty-named dirent over the wire: %+v", ents)
		}
	}
	if err := cl.Unmount(ctx); err != nil {
		t.Fatalf("unmount: %v", err)
	}
}

// TestRequestSpanTree: a remote request must produce one coherent span
// tree — a rpc.<op> root with the FS/device child spans (journal commits,
// hugepage zeroing) hanging off it, carrying a plausible cost breakdown.
func TestRequestSpanTree(t *testing.T) {
	sink := trace.NewCollect()
	tr := trace.New(sink)
	_, pl := newServer(t, pmem.New(256<<20), Config{Tracer: tr})
	cl := dialT(t, pl)
	ctx := sim.NewCtx(100, 0)

	f, err := cl.Create(ctx, "/traced")
	if err != nil {
		t.Fatal(err)
	}
	// A 2MiB fallocate forces journal commits and bulk zeroing under one rpc.
	if err := f.Fallocate(ctx, 0, 2<<20); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt(ctx, bytes.Repeat([]byte("w"), 4096), 0); err != nil {
		t.Fatal(err)
	}
	f.Close(ctx)
	cl.Unmount(ctx)

	spans := sink.Spans()
	byID := map[uint64]*trace.Span{}
	roots := map[string]*trace.Span{}
	for _, sp := range spans {
		byID[sp.ID] = sp
		if sp.ParentID == 0 {
			if !strings.HasPrefix(sp.Name, "rpc.") {
				t.Errorf("non-rpc root span %q", sp.Name)
			}
			roots[sp.Name] = sp
		}
	}
	for _, want := range []string{"rpc.create", "rpc.fallocate", "rpc.write", "rpc.close"} {
		if roots[want] == nil {
			t.Errorf("missing root span %s (have %v)", want, spanNames(spans))
		}
	}
	// Children link to a live parent and nest inside its interval.
	var commits, zeroes int
	for _, sp := range spans {
		if sp.ParentID == 0 {
			continue
		}
		parent := byID[sp.ParentID]
		if parent == nil {
			t.Fatalf("span %s has dangling parent %d", sp.Name, sp.ParentID)
		}
		if sp.StartNS < parent.StartNS || sp.EndNS > parent.EndNS {
			t.Errorf("span %s [%d,%d] escapes parent %s [%d,%d]",
				sp.Name, sp.StartNS, sp.EndNS, parent.Name, parent.StartNS, parent.EndNS)
		}
		switch sp.Name {
		case "journal.commit":
			commits++
		case "pmem.zero":
			zeroes++
		}
	}
	if commits == 0 {
		t.Error("no journal.commit child spans under the rpcs")
	}
	if zeroes == 0 {
		t.Error("no pmem.zero span for the 2MiB fallocate")
	}
	// The fallocate rpc's breakdown must attribute journal and zero time.
	fa := roots["rpc.fallocate"]
	if fa.Cost.JournalNS <= 0 || fa.Cost.ZeroNS <= 0 {
		t.Errorf("rpc.fallocate breakdown: %+v", fa.Cost)
	}
	if fa.Attrs["status"] != "0" {
		t.Errorf("rpc.fallocate status attr = %q", fa.Attrs["status"])
	}
}

func spanNames(spans []*trace.Span) []string {
	out := make([]string, len(spans))
	for i, sp := range spans {
		out[i] = sp.Name
	}
	return out
}

// TestTracingDoesNotPerturbVirtualTime: the same deterministic workload run
// with tracing off and on must produce identical virtual time and counters
// — spans observe the clock, never advance it.
func TestTracingDoesNotPerturbVirtualTime(t *testing.T) {
	run := func(tr *trace.Tracer) (int64, *sim.Ctx) {
		_, pl := newServer(t, pmem.New(256<<20), Config{Tracer: tr})
		cl := dialT(t, pl)
		ctx := sim.NewCtx(100, 0)
		res, err := workloads.ServerMixClient(ctx, cl, 0, workloads.ServerMixConfig{Ops: 200, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		if err := cl.Unmount(ctx); err != nil {
			t.Fatal(err)
		}
		return res.VirtualNS, ctx
	}
	offNS, offCtx := run(nil)
	onNS, onCtx := run(trace.New(trace.NewCollect()))
	if offNS != onNS {
		t.Errorf("virtual time diverged: off=%d on=%d", offNS, onNS)
	}
	if *offCtx.Counters != *onCtx.Counters {
		t.Errorf("counters diverged:\noff: %+v\non:  %+v", offCtx.Counters, onCtx.Counters)
	}
}

// TestConcurrentClients is the acceptance test: ≥8 clients doing mixed
// create/write/read/rename against one WineFS mount through the in-memory
// transport, byte-exact reads, clean shutdown. Run under -race by make
// check.
func TestConcurrentClients(t *testing.T) {
	const clients = 8
	srv, pl := newServer(t, pmem.New(1<<30), Config{})

	var wg sync.WaitGroup
	errs := make([]error, clients)
	var opsMu sync.Mutex
	var totalOps int64
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl := dialT(t, pl)
			ctx := sim.NewCtx(200+i, i%testCPUs)
			res, err := workloads.ServerMixClient(ctx, cl, i, workloads.ServerMixConfig{Ops: 60, Seed: 42})
			if err != nil {
				errs[i] = err
				return
			}
			opsMu.Lock()
			totalOps += res.Ops
			opsMu.Unlock()
			errs[i] = cl.Unmount(ctx)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("client %d: %v", i, err)
		}
	}
	waitFor(t, "sessions to finish", func() bool { return srv.Stats().ActiveSessions == 0 })
	st := srv.Stats()
	if st.TotalSessions != clients {
		t.Errorf("TotalSessions = %d, want %d", st.TotalSessions, clients)
	}
	if st.OpenHandles != 0 {
		t.Errorf("OpenHandles = %d after all sessions closed", st.OpenHandles)
	}
	if st.Ops < totalOps {
		t.Errorf("server ops %d < client ops %d", st.Ops, totalOps)
	}
	if st.Counters.Syscalls == 0 || st.Lat.Count() == 0 {
		t.Error("aggregated stats empty")
	}
}

// okServingErr reports whether err is an outcome the degradation ladder
// allows a remote client to observe under media faults: clean EIO,
// read-only fallback, or an ordinary namespace race. Anything else —
// in particular a dropped connection or an unmapped error — fails the
// fault campaign.
func okServingErr(err error) bool {
	for _, allowed := range []error{
		vfs.ErrIO, vfs.ErrReadOnly, vfs.ErrNotExist, vfs.ErrExist,
		vfs.ErrNoSpace, winefs.ErrTxOverflow,
	} {
		if errors.Is(err, allowed) {
			return true
		}
	}
	return false
}

// TestFaultCampaignServing: the device carries a FaultPlan while 8 clients
// hammer the mount. Every client-visible failure must be a typed EIO or
// read-only error delivered over a live connection — never a panic, never
// a connection drop.
func TestFaultCampaignServing(t *testing.T) {
	const clients = 8
	dev := pmem.New(512 << 20)
	_, pl := newServer(t, dev, Config{})
	// Trip persistent media errors on an escalating schedule of checked
	// reads; whatever structure read #N happens to be (data, dirent block,
	// inode table, journal) gets poisoned, exercising both the EIO and the
	// read-only rungs of the ladder.
	var rules []pmem.ReadRule
	for n := 40; n <= 2000; n += 120 {
		rules = append(rules, pmem.ReadRule{Nth: n})
	}
	dev.SetFaultPlan(&pmem.FaultPlan{Seed: 99, Reads: rules, TornFence: -1})

	var wg sync.WaitGroup
	unexpected := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl := dialT(t, pl)
			defer cl.Close()
			ctx := sim.NewCtx(300+i, i%testCPUs)
			dir := fmt.Sprintf("/fc%d", i)
			if err := cl.Mkdir(ctx, dir); err != nil && !okServingErr(err) {
				unexpected[i] = fmt.Errorf("mkdir: %w", err)
				return
			}
			buf := make([]byte, 8192)
			for op := 0; op < 120; op++ {
				name := fmt.Sprintf("%s/f%03d", dir, op)
				f, err := cl.Create(ctx, name)
				if err != nil {
					if !okServingErr(err) {
						unexpected[i] = fmt.Errorf("create %s: %w", name, err)
						return
					}
					continue
				}
				if _, err := f.Append(ctx, buf); err != nil && !okServingErr(err) {
					unexpected[i] = fmt.Errorf("append %s: %w", name, err)
					return
				}
				if _, err := f.ReadAt(ctx, buf, 0); err != nil && !okServingErr(err) {
					unexpected[i] = fmt.Errorf("read %s: %w", name, err)
					return
				}
				if err := f.Close(ctx); err != nil && !okServingErr(err) {
					unexpected[i] = fmt.Errorf("close %s: %w", name, err)
					return
				}
				if op%5 == 4 {
					if err := cl.Unlink(ctx, name); err != nil && !okServingErr(err) {
						unexpected[i] = fmt.Errorf("unlink %s: %w", name, err)
						return
					}
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range unexpected {
		if err != nil {
			t.Errorf("client %d observed a non-ladder failure: %v", i, err)
		}
	}
	if pr, _ := dev.FaultStats(); pr == 0 {
		t.Error("fault plan never tripped: campaign exercised nothing")
	}
	// The server survived the campaign: a fresh client still gets served.
	cl := dialT(t, pl)
	ctx := sim.NewCtx(400, 0)
	if _, err := cl.Stat(ctx, "/"); err != nil && !okServingErr(err) {
		t.Errorf("post-campaign stat: %v", err)
	}
	cl.Unmount(ctx)
}

// TestSessionDeathFreesHandles is the satellite regression test: a client
// killed without detaching must have its handles closed server-side (with
// a fresh ctx) so a second client working on the same inode proceeds.
func TestSessionDeathFreesHandles(t *testing.T) {
	srv, pl := newServer(t, pmem.New(256<<20), Config{})

	connA, err := pl.Dial()
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	clA, err := Dial(connA)
	if err != nil {
		t.Fatalf("handshake: %v", err)
	}
	ctxA := sim.NewCtx(500, 0)
	fA, err := clA.Create(ctxA, "/shared")
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := fA.Append(ctxA, bytes.Repeat([]byte{7}, 32<<10)); err != nil {
		t.Fatalf("append: %v", err)
	}
	waitFor(t, "handle to register", func() bool { return srv.Stats().OpenHandles == 1 })

	// Kill the client abruptly: no Close of the handle, no Detach.
	connA.Close()
	waitFor(t, "dead session cleanup", func() bool {
		st := srv.Stats()
		return st.ActiveSessions == 0 && st.OpenHandles == 0
	})

	// A second client must be able to use, overwrite and unlink the same
	// inode without wedging on anything the dead session left behind.
	clB := dialT(t, pl)
	ctxB := sim.NewCtx(501, 1)
	done := make(chan error, 1)
	go func() {
		fB, err := clB.Open(ctxB, "/shared")
		if err != nil {
			done <- err
			return
		}
		if _, err := fB.WriteAt(ctxB, []byte("alive"), 0); err != nil {
			done <- err
			return
		}
		if err := fB.Close(ctxB); err != nil {
			done <- err
			return
		}
		done <- clB.Unlink(ctxB, "/shared")
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("second client failed: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("second client wedged on the dead session's inode")
	}
	clB.Unmount(ctxB)
}

// TestFilebenchThroughClient runs a full unmodified workload driver from
// internal/workloads against a remote mount (acceptance criterion). The
// driver spawns its own goroutines, so this also exercises request
// multiplexing on one shared connection.
func TestFilebenchThroughClient(t *testing.T) {
	srv, pl := newServer(t, pmem.New(1<<30), Config{})
	_ = srv
	cl := dialT(t, pl)
	res, err := workloads.Filebench(cl, workloads.Varmail, workloads.FilebenchConfig{
		Threads:      4,
		Files:        200,
		OpsPerThread: 25,
		Seed:         7,
	})
	if err != nil {
		t.Fatalf("filebench over the wire: %v", err)
	}
	if res.Ops != 4*25 || res.VirtualNS <= 0 {
		t.Fatalf("filebench result = %+v", res)
	}
	if res.Throughput() <= 0 {
		t.Fatalf("throughput = %v", res.Throughput())
	}
	ctx := sim.NewCtx(600, 0)
	if err := cl.Unmount(ctx); err != nil {
		t.Fatalf("unmount: %v", err)
	}
}

// TestGracefulDrain: shutdown mid-traffic must answer already-pipelined
// requests and leave later calls failing with ErrConnClosed — clients see
// typed errors, not hangs or panics.
func TestGracefulDrain(t *testing.T) {
	srv, pl := newServer(t, pmem.New(256<<20), Config{})
	const clients = 4
	var wg sync.WaitGroup
	unexpected := make([]error, clients)
	started := make(chan struct{}, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl := dialT(t, pl)
			ctx := sim.NewCtx(700+i, i%testCPUs)
			err := cl.Mkdir(ctx, fmt.Sprintf("/dr%d", i))
			if err == vfs.ErrExist {
				err = nil
			}
			started <- struct{}{} // always signal, or an early error hangs the test
			if err != nil {
				unexpected[i] = err
				return
			}
			for op := 0; ; op++ {
				// Create/append/unlink churn: sustained traffic with bounded
				// space use, so however fast the transport pipelines, the
				// loop cannot exhaust the device before Shutdown fires.
				name := fmt.Sprintf("/dr%d/f%04d", i, op)
				f, err := cl.Create(ctx, name)
				if err == nil {
					_, err = f.Append(ctx, make([]byte, 4096))
					if cerr := f.Close(ctx); err == nil {
						err = cerr
					}
					if err == nil {
						err = cl.Unlink(ctx, name)
					}
				}
				if err != nil {
					if !errors.Is(err, ErrConnClosed) {
						unexpected[i] = err
					}
					return
				}
			}
		}(i)
	}
	for i := 0; i < clients; i++ {
		<-started
	}
	srv.Shutdown()
	wg.Wait()
	for i, err := range unexpected {
		if err != nil {
			t.Errorf("client %d: drain surfaced %v, want only ErrConnClosed", i, err)
		}
	}
	if st := srv.Stats(); st.ActiveSessions != 0 {
		t.Errorf("ActiveSessions = %d after Shutdown", st.ActiveSessions)
	}
	// New connections are refused after shutdown.
	if _, err := pl.Dial(); !errors.Is(err, ErrShutdown) {
		t.Errorf("post-shutdown dial = %v, want ErrShutdown", err)
	}
}

// TestBackpressureWindow: a tiny pipelining window must throttle, not
// deadlock or drop, a burst of concurrent callers on one session.
func TestBackpressureWindow(t *testing.T) {
	srv, pl := newServer(t, pmem.New(256<<20), Config{Window: 2})
	_ = srv
	cl := dialT(t, pl)
	setup := sim.NewCtx(800, 0)
	if err := cl.Mkdir(setup, "/bp"); err != nil {
		t.Fatalf("mkdir: %v", err)
	}
	const callers = 16
	var wg sync.WaitGroup
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx := sim.NewCtx(810+i, i%testCPUs)
			for op := 0; op < 10; op++ {
				name := fmt.Sprintf("/bp/c%d-%d", i, op)
				f, err := cl.Create(ctx, name)
				if err == nil {
					_, err = f.Append(ctx, make([]byte, 1024))
					if err == nil {
						err = f.Close(ctx)
					}
				}
				if err != nil {
					errs[i] = err
					return
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Errorf("caller %d: %v", i, err)
		}
	}
	cl.Unmount(setup)
}
