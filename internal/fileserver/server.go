package fileserver

import (
	"context"
	"encoding/binary"
	"strconv"
	"sync"
	"time"

	"repro/internal/perf"
	"repro/internal/sim"
	"repro/internal/trace"
	"repro/internal/vfs"
)

// Thread-id bases keep simulated session threads (and their RNG streams)
// disjoint from the workload drivers' 1000–5000 range.
const (
	sessionThreadBase = 9000
	cleanupThreadBase = 12000
)

// Config tunes a Server.
type Config struct {
	// CPUs is the simulated-CPU domain sessions are pinned to round-robin,
	// so WineFS's per-CPU journals and allocator pools see genuinely
	// multi-core traffic. Default 8.
	CPUs int
	// Window is the per-session bound on queued pipelined requests. When a
	// client pipelines past it the server stops reading its connection,
	// which backpressures the transport instead of buffering without
	// limit. Default 32.
	Window int
	// Tracer, when non-nil, gives every session a trace context: each
	// request becomes a root span named rpc.<op> whose children are the
	// spans the FS, MMU and device layers open underneath (journal commits,
	// page faults, bulk zeroing). Nil disables tracing.
	Tracer *trace.Tracer
	// BaseNS is the virtual instant session clocks start at. A server over
	// a file system that was populated before it started should pass the
	// populating thread's final Now(): lock and device-port calendars
	// already extend to that frontier, and a session starting at 0 would
	// charge the entire setup history to its first lock acquisition as
	// phantom wait time.
	BaseNS int64
	// RevokeTimeout bounds (in wall-clock time — it is a liveness guard,
	// not part of the simulation) how long a conflicting request waits for
	// a lease holder to flush and ack a revoke. On expiry the holder's read
	// side is shut — the graceful-drain path — its leases are force-dropped
	// and the request proceeds. Default 5s. ShutdownCtx reuses it as the
	// grace period before live connections are severed.
	RevokeTimeout time.Duration
	// Epoch is the primary-epoch number announced in the hello response.
	// Standalone servers leave it 0; internal/cluster bumps it on every
	// failover so clients can fence stale primaries.
	Epoch uint64
	// PostMutate, when non-nil, runs on the session worker after any
	// request that wrote to persistent media (detected by the session's
	// PMWriteBytes delta), inside the request's cost window. The cluster
	// replicator hooks synchronous-replication waits and virtual
	// replication cost in here.
	PostMutate func(ctx *sim.Ctx, bytes int64)
}

func (c Config) withDefaults() Config {
	if c.CPUs <= 0 {
		c.CPUs = 8
	}
	if c.Window <= 0 {
		c.Window = 32
	}
	if c.RevokeTimeout <= 0 {
		c.RevokeTimeout = 5 * time.Second
	}
	return c
}

// Stats is a point-in-time aggregate over all sessions, live and finished.
// Counters merges every session's perf.Counters (via Counters.Add); Lat
// merges the per-request virtual-latency histograms.
type Stats struct {
	ActiveSessions int
	TotalSessions  uint64
	OpenHandles    int
	Ops            int64
	Counters       perf.Counters
	Lat            perf.Histogram
}

// Server exports one vfs.FS to any number of concurrent clients. Each
// accepted connection becomes a session owned by a single goroutine with
// its own sim.Ctx; the file system underneath is shared, exactly as a
// kernel FS is shared between processes.
type Server struct {
	fs  vfs.FS
	cfg Config

	mu        sync.Mutex
	listeners []Listener
	sessions  map[uint64]*session
	nextSess  uint64
	total     uint64
	draining  bool

	// finished sessions fold their accounting in here.
	doneCounters perf.Counters
	doneLat      perf.Histogram
	doneOps      int64

	// leaseMu guards the per-ino lease table and every session's
	// revokeWaiters (lease.go).
	leaseMu sync.Mutex
	leases  map[uint64]*fileLease

	// mapped, when the exported FS tracks memory mappings, gates lease
	// grants: a locally mapped inode is never leased (DAX stores bypass
	// the lease protocol entirely), so those clients run uncached.
	mapped vfs.MapTracker

	wg sync.WaitGroup
}

// New returns a server exporting fs.
func New(fs vfs.FS, cfg Config) *Server {
	s := &Server{
		fs:       fs,
		cfg:      cfg.withDefaults(),
		sessions: make(map[uint64]*session),
		leases:   make(map[uint64]*fileLease),
	}
	if mt, ok := fs.(vfs.MapTracker); ok {
		s.mapped = mt
	}
	if mn, ok := fs.(vfs.MapNotifier); ok {
		// The reverse direction: a mapping attaching locally revokes any
		// leases already out on the inode, exactly like a conflicting
		// writer.
		mn.SetMapHook(func(ino uint64) { s.revokeConflicting(nil, ino, true) })
	}
	return s
}

// FS returns the exported file system.
func (s *Server) FS() vfs.FS { return s.fs }

// Serve accepts connections on l until the listener fails or the server is
// shut down. It returns nil on graceful shutdown. Multiple Serve calls on
// different listeners are allowed.
func (s *Server) Serve(l Listener) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		l.Close()
		return ErrShutdown
	}
	s.listeners = append(s.listeners, l)
	s.mu.Unlock()
	for {
		conn, err := l.Accept()
		if err != nil {
			s.mu.Lock()
			draining := s.draining
			s.mu.Unlock()
			if draining {
				return nil
			}
			return err
		}
		s.startSession(conn)
	}
}

func (s *Server) startSession(conn Conn) {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		conn.Close()
		return
	}
	id := s.nextSess
	s.nextSess++
	s.total++
	sess := &session{
		id:            id,
		srv:           s,
		conn:          conn,
		ctx:           sim.NewCtx(sessionThreadBase+int(id), int(id)%s.cfg.CPUs),
		handles:       make(map[uint64]vfs.File),
		reqs:          make(chan request, s.cfg.Window),
		done:          make(chan struct{}),
		revokeWaiters: make(map[uint64][]chan struct{}),
	}
	sess.ctx.AdvanceTo(s.cfg.BaseNS)
	sess.ctx.Trace = s.cfg.Tracer.NewContext(sess.ctx.Thread)
	s.sessions[id] = sess
	s.wg.Add(1)
	s.mu.Unlock()
	go sess.reader()
	go sess.worker()
	// In-process transports get the synchronous dispatch path: the client
	// end invokes this session directly, skipping both message queues and
	// four goroutine wakeups per RPC. Published last so a client that sees
	// it finds a fully initialised session.
	if dc, ok := conn.(directConn); ok {
		dc.setDirect(&sessionDirect{sess: sess})
	}
}

// Shutdown drains gracefully: listeners close, every session's read side
// is shut so no new requests arrive, the already-pipelined requests are
// answered, handles are closed, and Shutdown returns once every session is
// gone. Safe to call more than once.
func (s *Server) Shutdown() {
	s.ShutdownCtx(context.Background())
}

// ShutdownCtx is Shutdown with a cancellation bound: the graceful drain is
// given until ctx is cancelled — or RevokeTimeout, whichever is sooner — to
// finish; after that every surviving connection is severed outright so a
// wedged session (e.g. a replica stream that stopped reading) cannot block
// shutdown forever. Returns ctx.Err() if the deadline forced the cut, nil
// if the drain finished in time.
func (s *Server) ShutdownCtx(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	ls := s.listeners
	s.listeners = nil
	live := make([]*session, 0, len(s.sessions))
	for _, sess := range s.sessions {
		live = append(live, sess)
	}
	s.mu.Unlock()
	for _, l := range ls {
		l.Close()
	}
	for _, sess := range live {
		closeRead(sess.conn)
	}

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	grace := time.NewTimer(s.cfg.RevokeTimeout)
	defer grace.Stop()
	var err error
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		err = ctx.Err()
	case <-grace.C:
		err = context.DeadlineExceeded
	}
	// Grace expired: sever what is left. Closing the conn unblocks both
	// goroutines of each surviving session, so the final Wait is bounded.
	s.mu.Lock()
	for _, sess := range s.sessions {
		sess.conn.Close()
	}
	s.mu.Unlock()
	<-drained
	return err
}

// Stats aggregates accounting across finished and live sessions.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{
		ActiveSessions: len(s.sessions),
		TotalSessions:  s.total,
		Ops:            s.doneOps,
	}
	st.Counters.Add(&s.doneCounters)
	st.Lat.Merge(&s.doneLat)
	for _, sess := range s.sessions {
		sess.statsMu.Lock()
		st.Counters.Add(&sess.snapCounters)
		st.Lat.Merge(&sess.snapLat)
		st.Ops += sess.ops
		st.OpenHandles += sess.openHandles
		sess.statsMu.Unlock()
	}
	return st
}

// request is one decoded-but-unprocessed frame.
type request struct {
	id      uint64
	op      op
	payload []byte
}

// session serves one client connection. The worker goroutine owns ctx, the
// handle table and the write side of conn; the reader goroutine owns the
// read side and feeds the bounded reqs channel.
type session struct {
	id   uint64
	srv  *Server
	conn Conn
	ctx  *sim.Ctx

	handles    map[uint64]vfs.File
	nextHandle uint64

	reqs chan request
	done chan struct{} // closed by the worker on exit

	// dmu serialises request execution (sess.ctx, the handle table) across
	// the worker loop and the direct-dispatch path; directStopped marks the
	// session past teardown so late direct calls fall back to the (dead)
	// pipe and surface the usual transport error.
	dmu           sync.Mutex
	directStopped bool

	// wmu serialises frame writes to conn: the worker's responses and
	// other sessions' lease-revoke pushes (pushRevoke) share the write
	// side.
	wmu sync.Mutex
	// revokeWaiters holds, per ino, the channels of requests blocked on
	// this session acking a lease revoke. Guarded by srv.leaseMu.
	revokeWaiters map[uint64][]chan struct{}

	// statsMu guards the snapshot the server's Stats() reads while the
	// worker is live.
	statsMu      sync.Mutex
	snapCounters perf.Counters
	snapLat      perf.Histogram
	ops          int64
	openHandles  int
}

// reader pulls frames off the connection into the bounded request queue.
// A full queue blocks it — and therefore the transport — which is the
// pipelining backpressure. Any read error (EOF, abrupt client death,
// drain's CloseRead) ends the session's input; close(reqs) lets the worker
// finish what was already pipelined and tear down.
func (sess *session) reader() {
	defer close(sess.reqs)
	for {
		id, code, payload, err := ReadFrame(sess.conn)
		if err != nil {
			return
		}
		if op(code) == opLeaseAck {
			// Acks are handled here, out of band: queued behind the worker
			// they could never be processed while the worker itself waits in
			// revokeConflicting, wedging a pair of cross-revoking sessions
			// until the timeout drains one (DESIGN.md §9). leaseAcked only
			// touches leaseMu state, so the reader may call it directly.
			sess.ackLease(id, payload)
			continue
		}
		select {
		case sess.reqs <- request{id: id, op: op(code), payload: payload}:
		case <-sess.done:
			return
		}
	}
}

// ackLease processes an opLeaseAck frame on the reader goroutine: record
// the ack, wake the waiters, reply with zero cost.
func (sess *session) ackLease(id uint64, payload []byte) {
	d := dec{b: payload}
	ino := d.u64()
	st := statusOK
	if !d.ok() {
		st = statusBadRequest
	} else {
		sess.srv.leaseAcked(sess, ino)
	}
	var out enc
	out.u64(0)
	if st != statusOK {
		out.str("bad leaseack payload")
	}
	sess.wmu.Lock()
	WriteFrame(sess.conn, id, uint8(st), out.b)
	sess.wmu.Unlock()
}

// worker processes requests in arrival order and writes every response.
func (sess *session) worker() {
	defer sess.teardown()
	for req := range sess.reqs {
		sess.dmu.Lock()
		st, frame, stop := sess.serveReq(req)
		sess.dmu.Unlock()
		sess.wmu.Lock()
		err := writeOwnedFrame(sess.conn, req.id, uint8(st), frame)
		sess.wmu.Unlock()
		if stop || err != nil {
			return
		}
	}
}

// serveReq executes one request with full per-request accounting and
// returns the finished response frame (header and cost slot filled in).
// Caller holds sess.dmu.
func (sess *session) serveReq(req request) (st status, frame []byte, stop bool) {
	start := sess.ctx.Now()
	sp := sess.ctx.StartSpan(rpcSpanName(req.op))
	pmw := sess.ctx.Counters.PMWriteBytes
	st, resp, stop := sess.dispatch(req)
	if pm := sess.srv.cfg.PostMutate; pm != nil {
		if delta := sess.ctx.Counters.PMWriteBytes - pmw; delta > 0 {
			// The replication hook runs inside the cost window so the
			// client is charged for synchronous replication time.
			pm(sess.ctx, delta)
		}
	}
	if sp != nil {
		sp.SetAttr("session", strconv.FormatUint(sess.id, 10))
		sp.SetAttr("req", strconv.FormatUint(req.id, 10))
		sp.SetAttr("status", strconv.Itoa(int(st)))
	}
	sess.ctx.EndSpan(sp)
	cost := sess.ctx.Now() - start

	// OK responses arrive from dispatch with the frame header and
	// cost slot already reserved (respEnc), so the frame finishes in
	// place: one buffer from dispatch to transport, no reassembly.
	frame = resp
	if st != statusOK || frame == nil {
		out := respEnc(0)
		if st != statusOK {
			out.str(resp2msg(resp))
		}
		frame = out.b
	}
	binary.LittleEndian.PutUint64(frame[frameHdrLen:], uint64(cost))

	sess.statsMu.Lock()
	sess.snapCounters = *sess.ctx.Counters
	sess.snapLat.Record(cost)
	sess.ops++
	sess.openHandles = len(sess.handles)
	sess.statsMu.Unlock()
	return st, frame, stop
}

// sessionDirect is the synchronous dispatch entry point a session
// publishes on direct-capable transports (the in-memory pipe). The client
// runs the server's request path on its own goroutine and receives the
// response frame as the return value; the pipe carries only lease-revoke
// pushes in the other direction.
type sessionDirect struct{ sess *session }

// call executes one request synchronously. The returned payload is the
// response frame's body (cost u64 first), exactly what ReadFrame would
// have yielded. ok=false means the direct path is gone (session tore
// down); the caller must fall back to the wire.
func (sd *sessionDirect) call(o op, payload []byte) (status, []byte, bool) {
	sess := sd.sess
	if o == opLeaseAck {
		// Acks stay out of band, exactly like the reader path: a request
		// blocked in revokeConflicting holds dmu, and the ack that
		// unblocks it may come from this very client's revoke handler.
		d := dec{b: payload}
		ino := d.u64()
		st := statusOK
		out := respEnc(0)
		if !d.ok() {
			st = statusBadRequest
			out.str("bad leaseack payload")
		} else {
			sess.srv.leaseAcked(sess, ino)
		}
		binary.LittleEndian.PutUint64(out.b[frameHdrLen:], 0)
		return st, out.b[frameHdrLen:], true
	}
	sess.dmu.Lock()
	if sess.directStopped {
		sess.dmu.Unlock()
		return 0, nil, false
	}
	st, frame, stop := sess.serveReq(request{op: o, payload: payload})
	if stop {
		// A detach over the direct path must tear the session down just
		// like one over the wire: kill the pipe so reader and worker
		// exit and run teardown. The response still returns to the
		// caller synchronously.
		sess.directStopped = true
		sess.dmu.Unlock()
		sess.conn.Close()
		return st, frame[frameHdrLen:], true
	}
	sess.dmu.Unlock()
	return st, frame[frameHdrLen:], true
}

// resp2msg interprets the dispatch payload of a failed request as its
// error message.
func resp2msg(resp []byte) string { return string(resp) }

// teardown runs exactly once per session, whatever killed it. Open handles
// are closed with a *fresh* sim.Ctx: the session ctx conceptually died
// with the client (and may sit mid-request in virtual time), while handle
// cleanup is the server's own work — like the kernel releasing a crashed
// process's file table — and must leave no inode lock in vfs.LockTable
// orphaned for the next client.
func (sess *session) teardown() {
	// Retire the direct path first: unpublish the entry point, then take
	// dmu so any direct call already in flight finishes (and is answered)
	// before the handle table goes away.
	if dc, ok := sess.conn.(directConn); ok {
		dc.setDirect(nil)
	}
	sess.dmu.Lock()
	sess.directStopped = true
	sess.dmu.Unlock()
	close(sess.done)
	// Leases die with the session: drop them all and wake any request
	// blocked on a revoke this session will never ack.
	sess.srv.dropSessionLeases(sess)
	cleanup := sim.NewCtx(cleanupThreadBase+int(sess.id), sess.ctx.CPU)
	cleanup.AdvanceTo(sess.ctx.Now())
	for _, f := range sess.handles {
		f.Close(cleanup) // best-effort: a degraded FS may refuse, that's fine
	}
	sess.handles = nil
	sess.conn.Close()

	sess.statsMu.Lock()
	sess.snapCounters = *sess.ctx.Counters
	sess.snapCounters.Add(cleanup.Counters)
	counters := sess.snapCounters
	lat := sess.snapLat
	ops := sess.ops
	sess.openHandles = 0
	sess.statsMu.Unlock()

	s := sess.srv
	s.mu.Lock()
	delete(s.sessions, sess.id)
	s.doneCounters.Add(&counters)
	s.doneLat.Merge(&lat)
	s.doneOps += ops
	s.mu.Unlock()
	s.wg.Done()
}

// respEnc returns an encoder whose buffer reserves the frame header and
// the u64 cost slot, so the worker can finish the frame without copying
// the payload again. extra hints the payload size beyond the fixed span.
func respEnc(extra int) enc {
	return enc{b: make([]byte, frameHdrLen+8, frameHdrLen+8+16+extra)}
}

// rpcSpanNames pre-concatenates trace span labels per opcode; building
// "rpc."+op.String() per request allocated on every RPC even with
// tracing off.
var rpcSpanNames = func() (n [len(opNames)]string) {
	for o, name := range opNames {
		if name != "" {
			n[o] = "rpc." + name
		}
	}
	return
}()

func rpcSpanName(o op) string {
	if int(o) < len(rpcSpanNames) && rpcSpanNames[o] != "" {
		return rpcSpanNames[o]
	}
	return "rpc." + o.String()
}

// fail formats an error into (status, message-payload).
func fail(err error) (status, []byte, bool) {
	st, msg := statusFor(err)
	return st, []byte(msg), false
}

// dispatch executes one request against the exported FS. It returns the
// wire status, the response payload (message text when the status is not
// OK), and whether the session should stop (client detach).
func (sess *session) dispatch(req request) (status, []byte, bool) {
	d := newDec(req.payload)
	fs := sess.srv.fs
	ctx := sess.ctx

	switch req.op {
	case opHello:
		ver := d.u32()
		if !d.ok() || ver != ProtoVersion {
			return statusBadRequest, []byte("protocol version mismatch"), false
		}
		e := respEnc(0)
		e.u32(ProtoVersion)
		e.str(fs.Name())
		e.u8(uint8(fs.Mode()))
		e.u32(uint32(sess.srv.cfg.CPUs))
		e.u32(uint32(sess.srv.cfg.Window))
		e.u64(sess.srv.cfg.Epoch)
		return statusOK, e.b, false

	case opOpen, opCreate:
		path := d.str()
		if !d.ok() {
			return statusBadRequest, nil, false
		}
		var f vfs.File
		var err error
		if req.op == opOpen {
			f, err = fs.Open(ctx, path)
		} else {
			f, err = fs.Create(ctx, path)
		}
		if err != nil {
			return fail(err)
		}
		// A conflicting open forces the current write-lease holder to
		// flush: anything this session reads through the new handle must
		// reflect every write the holder's cache buffered.
		sess.srv.revokeConflicting(sess, f.Ino(), false)
		h := sess.nextHandle
		sess.nextHandle++
		sess.handles[h] = f
		e := respEnc(0)
		e.u64(h)
		e.u64(f.Ino())
		e.i64(f.Size())
		return statusOK, e.b, false

	case opMkdir, opUnlink, opRmdir:
		path := d.str()
		if !d.ok() {
			return statusBadRequest, nil, false
		}
		var err error
		switch req.op {
		case opMkdir:
			err = fs.Mkdir(ctx, path)
		case opUnlink:
			err = fs.Unlink(ctx, path)
		case opRmdir:
			err = fs.Rmdir(ctx, path)
		}
		if err != nil {
			return fail(err)
		}
		return statusOK, nil, false

	case opRename:
		oldPath, newPath := d.str(), d.str()
		if !d.ok() {
			return statusBadRequest, nil, false
		}
		if err := fs.Rename(ctx, oldPath, newPath); err != nil {
			return fail(err)
		}
		return statusOK, nil, false

	case opStat:
		path := d.str()
		if !d.ok() {
			return statusBadRequest, nil, false
		}
		fi, err := fs.Stat(ctx, path)
		if err != nil {
			return fail(err)
		}
		// A write-lease holder may have buffered size-extending writes;
		// flush them so the stat reports the coherent size.
		if sess.srv.revokeConflicting(sess, fi.Ino, false) > 0 {
			if fi2, err2 := fs.Stat(ctx, path); err2 == nil {
				fi = fi2
			}
		}
		e := respEnc(0)
		e.u64(fi.Ino)
		e.i64(fi.Size)
		e.u8(b2u8(fi.IsDir))
		e.u32(uint32(fi.Nlink))
		return statusOK, e.b, false

	case opReadDir:
		path := d.str()
		if !d.ok() {
			return statusBadRequest, nil, false
		}
		ents, err := fs.ReadDir(ctx, path)
		if err != nil {
			return fail(err)
		}
		e := respEnc(0)
		e.u32(uint32(len(ents)))
		for _, ent := range ents {
			e.str(ent.Name)
			e.u64(ent.Ino)
			e.u8(b2u8(ent.IsDir))
		}
		return statusOK, e.b, false

	case opStatFS:
		sfs := fs.StatFS(ctx)
		e := respEnc(0)
		e.i64(sfs.TotalBlocks)
		e.i64(sfs.FreeBlocks)
		e.i64(sfs.FreeAligned2M)
		e.i64(sfs.Files)
		return statusOK, e.b, false

	case opRead:
		h, off, n := d.u64(), d.i64(), d.u32()
		f := sess.handles[h]
		if !d.ok() || n > maxIO {
			return statusBadRequest, nil, false
		}
		if f == nil {
			return statusBadHandle, nil, false
		}
		sess.srv.revokeConflicting(sess, f.Ino(), false)
		// Read straight into the response frame: the length prefix slot
		// is filled in after the read, so the data is never copied
		// between a scratch buffer and the payload.
		e := respEnc(4 + int(n))
		hdr := len(e.b)
		buf := e.b[hdr+4 : hdr+4+int(n)]
		got, err := f.ReadAt(ctx, buf, off)
		if err != nil {
			return fail(err)
		}
		e.u32(uint32(got))
		e.b = e.b[:hdr+4+got]
		return statusOK, e.b, false

	case opWrite, opAppend:
		h := d.u64()
		var off int64
		if req.op == opWrite {
			off = d.i64()
		}
		data := d.bytes()
		f := sess.handles[h]
		if !d.ok() {
			return statusBadRequest, nil, false
		}
		if f == nil {
			return statusBadHandle, nil, false
		}
		sess.srv.revokeConflicting(sess, f.Ino(), true)
		var n int
		var err error
		if req.op == opWrite {
			n, err = f.WriteAt(ctx, data, off)
		} else {
			n, err = f.Append(ctx, data)
		}
		if err != nil {
			return fail(err)
		}
		e := respEnc(0)
		e.u32(uint32(n))
		e.i64(f.Size())
		return statusOK, e.b, false

	case opTruncate:
		h, size := d.u64(), d.i64()
		f := sess.handles[h]
		if !d.ok() {
			return statusBadRequest, nil, false
		}
		if f == nil {
			return statusBadHandle, nil, false
		}
		sess.srv.revokeConflicting(sess, f.Ino(), true)
		if err := f.Truncate(ctx, size); err != nil {
			return fail(err)
		}
		e := respEnc(0)
		e.i64(f.Size())
		return statusOK, e.b, false

	case opFallocate:
		h, off, n := d.u64(), d.i64(), d.i64()
		f := sess.handles[h]
		if !d.ok() {
			return statusBadRequest, nil, false
		}
		if f == nil {
			return statusBadHandle, nil, false
		}
		sess.srv.revokeConflicting(sess, f.Ino(), true)
		if err := f.Fallocate(ctx, off, n); err != nil {
			return fail(err)
		}
		e := respEnc(0)
		e.i64(f.Size())
		return statusOK, e.b, false

	case opFsync:
		h := d.u64()
		f := sess.handles[h]
		if !d.ok() {
			return statusBadRequest, nil, false
		}
		if f == nil {
			return statusBadHandle, nil, false
		}
		if err := f.Fsync(ctx); err != nil {
			return fail(err)
		}
		return statusOK, nil, false

	case opCloseHandle:
		h := d.u64()
		f := sess.handles[h]
		if !d.ok() {
			return statusBadRequest, nil, false
		}
		if f == nil {
			return statusBadHandle, nil, false
		}
		delete(sess.handles, h)
		if err := f.Close(ctx); err != nil {
			return fail(err)
		}
		return statusOK, nil, false

	case opSetXattr:
		h, name, val := d.u64(), d.str(), d.bytes()
		f := sess.handles[h]
		if !d.ok() {
			return statusBadRequest, nil, false
		}
		if f == nil {
			return statusBadHandle, nil, false
		}
		if err := f.SetXattr(ctx, name, val); err != nil {
			return fail(err)
		}
		return statusOK, nil, false

	case opGetXattr:
		h, name := d.u64(), d.str()
		f := sess.handles[h]
		if !d.ok() {
			return statusBadRequest, nil, false
		}
		if f == nil {
			return statusBadHandle, nil, false
		}
		val, ok := f.GetXattr(ctx, name)
		e := respEnc(0)
		e.u8(b2u8(ok))
		e.bytes(val)
		return statusOK, e.b, false

	case opLease:
		h, mode := d.u64(), d.u8()
		f := sess.handles[h]
		if !d.ok() || mode > leaseWrite {
			return statusBadRequest, nil, false
		}
		if f == nil {
			return statusBadHandle, nil, false
		}
		granted := true
		if mode == leaseNone {
			sess.srv.releaseLease(sess, f.Ino())
		} else {
			granted = sess.srv.acquireLease(sess, f.Ino(), mode == leaseWrite)
		}
		e := respEnc(0)
		e.u8(b2u8(granted))
		return statusOK, e.b, false

	case opLeaseAck:
		ino := d.u64()
		if !d.ok() {
			return statusBadRequest, nil, false
		}
		sess.srv.leaseAcked(sess, ino)
		return statusOK, nil, false

	case opDetach:
		return statusOK, nil, true
	}
	return statusBadRequest, []byte("unknown opcode"), false
}

func b2u8(b bool) uint8 {
	if b {
		return 1
	}
	return 0
}
