// Package fileserver is the network serving layer of the reproduction: a
// session-oriented file server that exports any vfs.FS over a compact
// length-prefixed wire protocol, plus a client that implements vfs.FS so
// unmodified workloads can run against a remote mount.
//
// Frames are little-endian:
//
//	request:  u32 frameLen | u64 reqID | u8 opcode | payload
//	response: u32 frameLen | u64 reqID | u8 status | u64 costNS | payload
//
// frameLen counts the bytes after the length field itself. costNS is the
// virtual time the server charged the session for the request; the client
// advances the calling sim.Ctx by it, so virtual-time accounting (and
// therefore every throughput number in the repository) stays meaningful
// across the wire. Error responses carry a human-readable message as their
// payload; the status byte alone decides which vfs sentinel the client
// returns, so errors.Is-style checks work unmodified on the far side.
package fileserver

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"repro/internal/vfs"
	"repro/internal/winefs"
)

// ProtoVersion is bumped on any incompatible wire change; the handshake
// rejects mismatched clients instead of misparsing their frames.
// Version 2 added the lease protocol (opLease/opLeaseAck/statusRevoke).
// Version 3 appended the server epoch to the hello response so failover
// clients can fence stale primaries.
const ProtoVersion = 3

// maxFrame bounds a single frame so a corrupt or hostile length prefix
// cannot make the peer allocate unbounded memory.
const maxFrame = 16 << 20

// maxIO is the largest read or write carried by one frame; the client
// splits bigger requests into maxIO pieces.
const maxIO = 4 << 20

// op identifies a request type.
type op uint8

const (
	opHello op = iota + 1
	opOpen
	opCreate
	opMkdir
	opUnlink
	opRmdir
	opRename
	opStat
	opReadDir
	opStatFS
	opRead
	opWrite
	opAppend
	opTruncate
	opFallocate
	opFsync
	opCloseHandle
	opSetXattr
	opGetXattr
	opDetach
	// opLease acquires or releases a cache lease on an open handle:
	// payload is handle u64 | mode u8 (leaseNone releases). The response
	// carries granted u8 — the server may refuse (mode stays whatever it
	// was) rather than wait forever on an unresponsive conflicting holder.
	opLease
	// opLeaseAck is the client's reply to a statusRevoke push: payload is
	// the revoked ino u64. It confirms dirty state has been flushed and
	// every cached page for the ino dropped, letting the blocked
	// conflicting request proceed.
	opLeaseAck
)

// opNames names each opcode for traces and logs; index is the op value.
var opNames = [...]string{
	opHello: "hello", opOpen: "open", opCreate: "create", opMkdir: "mkdir",
	opUnlink: "unlink", opRmdir: "rmdir", opRename: "rename", opStat: "stat",
	opReadDir: "readdir", opStatFS: "statfs", opRead: "read", opWrite: "write",
	opAppend: "append", opTruncate: "truncate", opFallocate: "fallocate",
	opFsync: "fsync", opCloseHandle: "close", opSetXattr: "setxattr",
	opGetXattr: "getxattr", opDetach: "detach", opLease: "lease",
	opLeaseAck: "leaseack",
}

func (o op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("op%d", uint8(o))
}

// status is the first byte of every response. Each code except statusError
// maps to exactly one typed error on the client, so the PR 1 robustness
// ladder (EIO, read-only degradation, ErrTxOverflow) survives the wire.
type status uint8

const (
	statusOK status = iota
	statusNotExist
	statusExist
	statusNotDir
	statusIsDir
	statusNotEmpty
	statusNoSpace
	statusClosed
	statusReadOnly
	statusIO
	statusTxOverflow
	statusBadHandle
	statusBadRequest
	statusShutdown
	statusError // anything unmapped; message travels in the payload
)

// statusRevoke is not a response status: it marks a server-initiated push
// frame revoking the session's lease on the ino carried in the frame's id
// field. It sits far above the response range so a client demultiplexer
// can tell pushes from responses by the code byte alone.
const statusRevoke uint8 = 240

// Lease modes carried by opLease.
const (
	leaseNone  uint8 = 0 // release
	leaseRead  uint8 = 1 // shared: cached reads stay coherent
	leaseWrite uint8 = 2 // exclusive: write-back caching allowed
)

// wireErrs pairs every mapped sentinel with its status code. Order matters
// only in that it is scanned with errors.Is, which unwraps, so wrapped
// errors (winefs wraps vfs.ErrIO with the media detail) map correctly.
var wireErrs = []struct {
	err error
	st  status
}{
	{vfs.ErrNotExist, statusNotExist},
	{vfs.ErrExist, statusExist},
	{vfs.ErrNotDir, statusNotDir},
	{vfs.ErrIsDir, statusIsDir},
	{vfs.ErrNotEmpty, statusNotEmpty},
	{vfs.ErrNoSpace, statusNoSpace},
	{vfs.ErrClosed, statusClosed},
	{vfs.ErrReadOnly, statusReadOnly},
	{vfs.ErrIO, statusIO},
	{winefs.ErrTxOverflow, statusTxOverflow},
}

// Errors introduced by the serving layer itself.
var (
	// ErrConnClosed reports that the transport died (or was shut down)
	// before the response arrived.
	ErrConnClosed = errors.New("fileserver: connection closed")
	// ErrServerGone reports that the server side dropped the transport
	// while the client still wanted it — a crash or kill, as opposed to a
	// close the client initiated itself. It wraps ErrConnClosed so
	// existing errors.Is(err, ErrConnClosed) checks keep matching;
	// failover logic matches ErrServerGone specifically to tell a dead
	// primary from a local protocol bug.
	ErrServerGone = fmt.Errorf("fileserver: server gone: %w", ErrConnClosed)
	// ErrNotSupported is returned for operations that have no remote
	// equivalent (Mmap needs an address space the client doesn't share).
	// It wraps vfs.ErrNotSupported so callers probing with errors.Is see
	// the same typed failure from local and remote mounts.
	ErrNotSupported = fmt.Errorf("fileserver: operation not supported on a remote mount: %w", vfs.ErrNotSupported)
	// ErrBadHandle reports a request naming a handle the session never
	// opened (or already closed).
	ErrBadHandle = errors.New("fileserver: bad file handle")
	// ErrBadRequest reports a malformed or unknown request frame.
	ErrBadRequest = errors.New("fileserver: malformed request")
	// ErrShutdown reports that the server is draining and accepts no new
	// connections.
	ErrShutdown = errors.New("fileserver: server shutting down")
)

// statusFor maps an error from the exported FS onto a wire status.
func statusFor(err error) (status, string) {
	if err == nil {
		return statusOK, ""
	}
	for _, w := range wireErrs {
		if errors.Is(err, w.err) {
			return w.st, err.Error()
		}
	}
	return statusError, err.Error()
}

// errFor maps a wire status back onto the matching sentinel. Known codes
// return the bare vfs error so workload code comparing with == (the
// repository's idiom for ErrExist and friends) works against a remote
// mount exactly as against a local one.
func errFor(st status, msg string) error {
	for _, w := range wireErrs {
		if w.st == st {
			return w.err
		}
	}
	switch st {
	case statusOK:
		return nil
	case statusBadHandle:
		return ErrBadHandle
	case statusBadRequest:
		return ErrBadRequest
	case statusShutdown:
		return ErrShutdown
	}
	if msg == "" {
		msg = "remote error"
	}
	return fmt.Errorf("fileserver: remote: %s", msg)
}

// frameHdrLen is the wire header every frame starts with: u32 length,
// u64 id, u8 code.
const frameHdrLen = 13

// writeOwnedFrame finishes an in-place frame whose first frameHdrLen
// bytes were reserved by the encoder (see reqEnc/respEnc) and writes it
// with zero re-assembly copies. On the pipe fast path ownership of buf
// passes to the transport; the caller must not touch it afterwards.
func writeOwnedFrame(w io.Writer, id uint64, code uint8, buf []byte) error {
	binary.LittleEndian.PutUint32(buf[0:], uint32(9+len(buf)-frameHdrLen))
	binary.LittleEndian.PutUint64(buf[4:], id)
	buf[12] = code
	if mw, ok := w.(msgWriter); ok {
		return mw.writeMsg(buf)
	}
	_, err := w.Write(buf)
	return err
}

// msgWriter and msgReader are the optional frame-granular transport
// interface (see pipeConn): frames move as owned []byte messages instead
// of stream bytes.
type msgWriter interface{ writeMsg(frame []byte) error }
type msgReader interface{ readMsg() ([]byte, error) }

// frameBufPool recycles WriteFrame assembly buffers; the transports below
// (TCP, buffered pipe) all copy the bytes out during Write, so the buffer
// can be reused the moment Write returns.
var frameBufPool = sync.Pool{New: func() any {
	b := make([]byte, 0, 4096)
	return &b
}}

// WriteFrame assembles and writes one frame with a single Write call (so
// concurrent writers on one transport never interleave frame bytes).
// Exported so internal/cluster can reuse the framing for its replication
// stream instead of inventing a second length-prefixed protocol.
func WriteFrame(w io.Writer, id uint64, code uint8, payload []byte) error {
	if mw, ok := w.(msgWriter); ok {
		// Pipe fast path: hand the assembled frame over whole. The queue
		// owns it afterwards, so no pooling — but the reader parses it in
		// place, skipping its own payload allocation and copies.
		buf := make([]byte, 13+len(payload))
		binary.LittleEndian.PutUint32(buf[0:], uint32(9+len(payload)))
		binary.LittleEndian.PutUint64(buf[4:], id)
		buf[12] = code
		copy(buf[13:], payload)
		return mw.writeMsg(buf)
	}
	bp := frameBufPool.Get().(*[]byte)
	buf := *bp
	if need := 13 + len(payload); cap(buf) < need {
		buf = make([]byte, 0, need)
	}
	buf = buf[:13+len(payload)]
	binary.LittleEndian.PutUint32(buf[0:], uint32(9+len(payload)))
	binary.LittleEndian.PutUint64(buf[4:], id)
	buf[12] = code
	copy(buf[13:], payload)
	_, err := w.Write(buf)
	*bp = buf[:0]
	frameBufPool.Put(bp)
	return err
}

// ReadFrame reads one frame; any transport error (including EOF) is
// returned verbatim for the caller to treat as session death.
//
// The length prefix and the 9-byte id+code header are fetched with one
// ReadFull: every valid frame has at least 9 bytes after the prefix, so
// the merged read never overshoots a frame boundary. (A corrupt length
// < 9 is detected after the merged read; the connection is torn down
// either way, so the 9 bytes over-consumed on that path don't matter.)
func ReadFrame(r io.Reader) (id uint64, code uint8, payload []byte, err error) {
	if mr, ok := r.(msgReader); ok {
		frame, err := mr.readMsg()
		switch err {
		case nil:
			n := len(frame) - 4
			if len(frame) < 13 || int(binary.LittleEndian.Uint32(frame[:4])) != n || n-9 > maxFrame {
				return 0, 0, nil, fmt.Errorf("fileserver: bad frame length %d", n)
			}
			return binary.LittleEndian.Uint64(frame[4:12]), frame[12], frame[13:], nil
		case errStreamData:
			// The peer's conn is wrapped (fault injection routes WriteFrame
			// down the stream path); parse the stream below.
		default:
			return 0, 0, nil, err
		}
	}
	var hdr [13]byte
	if _, err = io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:4])
	if n < 9 || n > maxFrame {
		return 0, 0, nil, fmt.Errorf("fileserver: bad frame length %d", n)
	}
	id = binary.LittleEndian.Uint64(hdr[4:12])
	code = hdr[12]
	payload = make([]byte, n-9)
	if _, err = io.ReadFull(r, payload); err != nil {
		return 0, 0, nil, err
	}
	return id, code, payload, nil
}

// enc builds a payload.
type enc struct{ b []byte }

func (e *enc) u8(v uint8) { e.b = append(e.b, v) }

func (e *enc) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	e.b = append(e.b, b[:]...)
}

func (e *enc) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	e.b = append(e.b, b[:]...)
}

func (e *enc) i64(v int64) { e.u64(uint64(v)) }

func (e *enc) bytes(p []byte) {
	e.u32(uint32(len(p)))
	e.b = append(e.b, p...)
}

func (e *enc) str(s string) {
	e.u32(uint32(len(s)))
	e.b = append(e.b, s...)
}

// dec consumes a payload. Any out-of-bounds read sets bad; callers check
// ok() once at the end instead of after every field.
type dec struct {
	b   []byte
	pos int
	bad bool
}

func newDec(b []byte) *dec { return &dec{b: b} }

func (d *dec) take(n int) []byte {
	if d.bad || n < 0 || d.pos+n > len(d.b) {
		d.bad = true
		return nil
	}
	p := d.b[d.pos : d.pos+n]
	d.pos += n
	return p
}

func (d *dec) u8() uint8 {
	p := d.take(1)
	if p == nil {
		return 0
	}
	return p[0]
}

func (d *dec) u32() uint32 {
	p := d.take(4)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(p)
}

func (d *dec) u64() uint64 {
	p := d.take(8)
	if p == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(p)
}

func (d *dec) i64() int64 { return int64(d.u64()) }

func (d *dec) bytes() []byte {
	n := d.u32()
	return d.take(int(n))
}

func (d *dec) str() string { return string(d.bytes()) }

// ok reports whether every read so far stayed in bounds and the payload
// was fully consumed.
func (d *dec) ok() bool { return !d.bad }
