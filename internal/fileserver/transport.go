package fileserver

import (
	"errors"
	"io"
	"net"
	"sync"
	"sync/atomic"
)

// Conn is a bidirectional byte stream between one client and the server.
// Both transports (TCP and the in-memory pipe) satisfy it; the optional
// CloseRead side-channel (satisfied by *net.TCPConn and *pipeConn) lets a
// draining server stop reading new requests while the in-flight ones are
// still answered on the write side.
type Conn = io.ReadWriteCloser

// Listener accepts client connections for Server.Serve.
type Listener interface {
	Accept() (Conn, error)
	Close() error
	// Addr describes the listening endpoint (host:port for TCP).
	Addr() string
}

// closeRead shuts the read side of a connection when the transport
// supports it, falling back to a full close.
func closeRead(c Conn) {
	if cr, ok := c.(interface{ CloseRead() error }); ok {
		cr.CloseRead()
		return
	}
	c.Close()
}

// --- TCP transport ---------------------------------------------------------

type tcpListener struct{ l net.Listener }

// ListenTCP starts a TCP listener for winefsd. addr follows net.Listen
// conventions ("127.0.0.1:7070", ":0" for an ephemeral port).
func ListenTCP(addr string) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &tcpListener{l: l}, nil
}

func (t *tcpListener) Accept() (Conn, error) {
	c, err := t.l.Accept()
	if err != nil {
		return nil, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		// Frames are small and latency-sensitive; never wait for Nagle.
		tc.SetNoDelay(true)
	}
	return c, nil
}

func (t *tcpListener) Close() error { return t.l.Close() }
func (t *tcpListener) Addr() string { return t.l.Addr().String() }

// DialTCP connects to a winefsd instance.
func DialTCP(addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return c, nil
}

// --- in-memory pipe transport ----------------------------------------------

// PipeListener is the deterministic in-memory transport the tests and the
// winebench -server baseline use: no sockets, no kernel involvement, every
// byte moves through a mutex-guarded buffer, so runs are reproducible and
// the race detector sees every cross-goroutine edge.
type PipeListener struct {
	accept chan Conn
	once   sync.Once
	closed chan struct{}
}

// NewPipeListener returns an open in-memory listener.
func NewPipeListener() *PipeListener {
	return &PipeListener{
		accept: make(chan Conn),
		closed: make(chan struct{}),
	}
}

// Dial connects a new client, handing the server half to Accept. It fails
// with ErrShutdown once the listener is closed.
func (p *PipeListener) Dial() (Conn, error) {
	client, server := pipePair()
	select {
	case p.accept <- server:
		return client, nil
	case <-p.closed:
		client.Close()
		return nil, ErrShutdown
	}
}

// Accept implements Listener.
func (p *PipeListener) Accept() (Conn, error) {
	select {
	case c := <-p.accept:
		return c, nil
	case <-p.closed:
		return nil, ErrShutdown
	}
}

// Close implements Listener; pending and future Dial/Accept calls fail.
func (p *PipeListener) Close() error {
	p.once.Do(func() { close(p.closed) })
	return nil
}

// Addr implements Listener.
func (p *PipeListener) Addr() string { return "pipe" }

// pipeConn is one end of an in-memory duplex stream built from two
// buffered byte queues. The earlier implementation used io.Pipe, whose
// rendezvous handoff parks the writer until the reader arrives — profiled
// at ~20% of the -server bench sweep in scheduler churn. A bounded buffer
// keeps writes of whole frames non-blocking in the common case while
// preserving stream semantics: reads drain buffered bytes before
// reporting the peer's close.
type pipeConn struct {
	rd *bufPipe // inbound: the peer writes here, we read
	wr *bufPipe // outbound: we write here, the peer reads
	// cell is shared by both endpoints; a Server session accepting this
	// pipe publishes its synchronous dispatch entry point here, letting
	// the client end invoke the server directly on its own goroutine (see
	// sessionDirect in server.go). Raw-frame users (the replication
	// stream) never publish, so the cell stays nil and framing applies.
	cell *directCell
}

// directCell is the rendezvous slot for the direct-dispatch fast path.
type directCell struct{ p atomic.Pointer[sessionDirect] }

func pipePair() (a, b Conn) {
	p, q := newBufPipe(), newBufPipe()
	cell := &directCell{}
	return &pipeConn{rd: p, wr: q, cell: cell}, &pipeConn{rd: q, wr: p, cell: cell}
}

// directConn is satisfied by transports whose endpoints share an address
// space, enabling the synchronous dispatch path.
type directConn interface {
	setDirect(sd *sessionDirect)
	getDirect() *sessionDirect
}

func (c *pipeConn) setDirect(sd *sessionDirect) { c.cell.p.Store(sd) }
func (c *pipeConn) getDirect() *sessionDirect   { return c.cell.p.Load() }

func (c *pipeConn) Read(p []byte) (int, error)  { return c.rd.read(p) }
func (c *pipeConn) Write(p []byte) (int, error) { return c.wr.write(p) }

// writeMsg and readMsg are the frame fast path WriteFrame/ReadFrame take
// on pipe connections: a whole frame moves as one owned []byte through a
// message queue — one lock acquisition and zero re-parsing copies, where
// the stream path cost a buffer-assembly copy on the writer and two
// ReadFull round trips plus a payload allocation on the reader. Stream
// Read/Write and message traffic must not be mixed on one direction;
// every producer in the tree frames its pipe traffic, so the stream
// buffer stays empty whenever messages flow.
func (c *pipeConn) writeMsg(frame []byte) error { return c.wr.writeMsg(frame) }
func (c *pipeConn) readMsg() ([]byte, error)    { return c.rd.readMsg() }

func (c *pipeConn) Close() error {
	c.rd.closeRead(io.ErrClosedPipe)
	c.wr.closeWrite(io.ErrClosedPipe)
	return nil
}

// CloseRead shuts only the inbound half: our reads (and the peer's writes)
// fail, while our writes still reach the peer — exactly what graceful
// drain needs.
func (c *pipeConn) CloseRead() error {
	c.rd.closeRead(io.EOF)
	return nil
}

// bufPipe is one direction of the in-memory transport: a bounded FIFO of
// bytes (stream mode) or whole frames (message mode) with net.Conn-like
// close semantics.
type bufPipe struct {
	mu   sync.Mutex
	cond sync.Cond
	data []byte
	roff int
	// msgs is the message-mode queue; msgBytes tracks queued payload for
	// the same back-pressure bound the stream buffer enforces, and
	// readers counts goroutines blocked in readMsg (oversized frames are
	// only handed to an actively draining reader).
	msgs     [][]byte
	msgBytes int
	readers  int
	// werr is set when the writer closed; readers see it after draining.
	werr error
	// rerr is set when the reader closed; writers fail with it immediately
	// and reads fail with io.ErrClosedPipe (buffered bytes are abandoned,
	// matching io.PipeReader.CloseWithError).
	rerr error
}

// bufPipeMax bounds buffered bytes per direction so a slow reader (e.g. a
// stalled replication follower) exerts back-pressure instead of growing
// host memory without limit.
const bufPipeMax = 1 << 20

func newBufPipe() *bufPipe {
	p := &bufPipe{}
	p.cond.L = &p.mu
	return p
}

// errStreamData tells a readMsg caller that this direction is carrying
// stream bytes — its peer's conn is wrapped (fault injectors wrap Write,
// which routes WriteFrame down the stream path) — so it must fall back to
// stream reads. ReadFrame handles the fallback.
var errStreamData = errors.New("fileserver: bufPipe carrying stream bytes")

func (p *bufPipe) read(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.rerr != nil {
			return 0, io.ErrClosedPipe
		}
		if p.roff >= len(p.data) && len(p.msgs) > 0 {
			// The writer framed its traffic but this end reads the stream
			// (its conn is wrapped, hiding readMsg): flatten queued frames
			// into stream bytes — they are verbatim wire frames either way.
			for _, m := range p.msgs {
				p.data = append(p.data, m...)
			}
			p.msgs, p.msgBytes = nil, 0
			p.cond.Broadcast()
		}
		if p.roff < len(p.data) {
			n := copy(b, p.data[p.roff:])
			p.roff += n
			if p.roff == len(p.data) {
				p.data = p.data[:0]
				p.roff = 0
			}
			p.cond.Broadcast()
			return n, nil
		}
		if p.werr != nil {
			return 0, p.werr
		}
		// Count as a draining reader so an oversized writeMsg frame can be
		// handed over (it lands in msgs and is flattened on wake).
		p.readers++
		p.cond.Broadcast()
		p.cond.Wait()
		p.readers--
	}
}

func (p *bufPipe) write(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	written := 0
	for {
		if p.rerr != nil {
			return written, p.rerr
		}
		if p.werr != nil {
			return written, io.ErrClosedPipe
		}
		if room := bufPipeMax - (len(p.data) - p.roff); room > 0 {
			n := len(b)
			if n > room {
				n = room
			}
			p.data = append(p.data, b[:n]...)
			b = b[n:]
			written += n
			p.cond.Broadcast()
			if len(b) == 0 {
				return written, nil
			}
		}
		p.cond.Wait()
	}
}

// writeMsg enqueues one owned frame, blocking while the queue is over the
// back-pressure bound.
func (p *bufPipe) writeMsg(frame []byte) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.rerr != nil {
			return p.rerr
		}
		if p.werr != nil {
			return io.ErrClosedPipe
		}
		if len(frame) > bufPipeMax {
			// A frame bigger than the buffer bound can only reach a
			// reader that is actively draining — mirroring stream mode,
			// where the bytes past the bound trickle out as the peer
			// reads. A peer that never reads wedges the writer (the
			// shutdown path depends on that back-pressure).
			if p.msgBytes == 0 && p.readers > 0 {
				p.msgs = append(p.msgs, frame)
				p.msgBytes += len(frame)
				p.cond.Broadcast()
				return nil
			}
		} else if p.msgBytes+len(frame) <= bufPipeMax {
			p.msgs = append(p.msgs, frame)
			p.msgBytes += len(frame)
			p.cond.Broadcast()
			return nil
		}
		p.cond.Wait()
	}
}

// readMsg dequeues one frame; the returned slice is owned by the caller.
func (p *bufPipe) readMsg() ([]byte, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.rerr != nil {
			return nil, io.ErrClosedPipe
		}
		if len(p.msgs) > 0 {
			m := p.msgs[0]
			p.msgs[0] = nil
			p.msgs = p.msgs[1:]
			p.msgBytes -= len(m)
			if len(p.msgs) == 0 {
				p.msgs = nil
			}
			p.cond.Broadcast()
			return m, nil
		}
		if p.roff < len(p.data) {
			// The writer is sending stream bytes (its conn is wrapped,
			// hiding writeMsg); tell the caller to read the stream instead.
			return nil, errStreamData
		}
		if p.werr != nil {
			return nil, p.werr
		}
		p.readers++
		p.cond.Broadcast() // a blocked oversized-frame writer may proceed
		p.cond.Wait()
		p.readers--
	}
}

func (p *bufPipe) closeRead(err error) {
	p.mu.Lock()
	if p.rerr == nil {
		p.rerr = err
	}
	p.cond.Broadcast()
	p.mu.Unlock()
}

func (p *bufPipe) closeWrite(err error) {
	p.mu.Lock()
	if p.werr == nil {
		p.werr = err
	}
	p.cond.Broadcast()
	p.mu.Unlock()
}
