package fileserver

import (
	"io"
	"net"
	"sync"
)

// Conn is a bidirectional byte stream between one client and the server.
// Both transports (TCP and the in-memory pipe) satisfy it; the optional
// CloseRead side-channel (satisfied by *net.TCPConn and *pipeConn) lets a
// draining server stop reading new requests while the in-flight ones are
// still answered on the write side.
type Conn = io.ReadWriteCloser

// Listener accepts client connections for Server.Serve.
type Listener interface {
	Accept() (Conn, error)
	Close() error
	// Addr describes the listening endpoint (host:port for TCP).
	Addr() string
}

// closeRead shuts the read side of a connection when the transport
// supports it, falling back to a full close.
func closeRead(c Conn) {
	if cr, ok := c.(interface{ CloseRead() error }); ok {
		cr.CloseRead()
		return
	}
	c.Close()
}

// --- TCP transport ---------------------------------------------------------

type tcpListener struct{ l net.Listener }

// ListenTCP starts a TCP listener for winefsd. addr follows net.Listen
// conventions ("127.0.0.1:7070", ":0" for an ephemeral port).
func ListenTCP(addr string) (Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &tcpListener{l: l}, nil
}

func (t *tcpListener) Accept() (Conn, error) {
	c, err := t.l.Accept()
	if err != nil {
		return nil, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		// Frames are small and latency-sensitive; never wait for Nagle.
		tc.SetNoDelay(true)
	}
	return c, nil
}

func (t *tcpListener) Close() error { return t.l.Close() }
func (t *tcpListener) Addr() string { return t.l.Addr().String() }

// DialTCP connects to a winefsd instance.
func DialTCP(addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return c, nil
}

// --- in-memory pipe transport ----------------------------------------------

// PipeListener is the deterministic in-memory transport the tests and the
// winebench -server baseline use: no sockets, no kernel buffering, every
// byte moves through an io.Pipe rendezvous, so runs are reproducible and
// the race detector sees every cross-goroutine edge.
type PipeListener struct {
	accept chan Conn
	once   sync.Once
	closed chan struct{}
}

// NewPipeListener returns an open in-memory listener.
func NewPipeListener() *PipeListener {
	return &PipeListener{
		accept: make(chan Conn),
		closed: make(chan struct{}),
	}
}

// Dial connects a new client, handing the server half to Accept. It fails
// with ErrShutdown once the listener is closed.
func (p *PipeListener) Dial() (Conn, error) {
	client, server := pipePair()
	select {
	case p.accept <- server:
		return client, nil
	case <-p.closed:
		client.Close()
		return nil, ErrShutdown
	}
}

// Accept implements Listener.
func (p *PipeListener) Accept() (Conn, error) {
	select {
	case c := <-p.accept:
		return c, nil
	case <-p.closed:
		return nil, ErrShutdown
	}
}

// Close implements Listener; pending and future Dial/Accept calls fail.
func (p *PipeListener) Close() error {
	p.once.Do(func() { close(p.closed) })
	return nil
}

// Addr implements Listener.
func (p *PipeListener) Addr() string { return "pipe" }

// pipeConn is one end of an in-memory duplex stream built from two
// io.Pipes.
type pipeConn struct {
	r *io.PipeReader
	w *io.PipeWriter
}

func pipePair() (a, b Conn) {
	ar, aw := io.Pipe()
	br, bw := io.Pipe()
	return &pipeConn{r: ar, w: bw}, &pipeConn{r: br, w: aw}
}

func (c *pipeConn) Read(p []byte) (int, error)  { return c.r.Read(p) }
func (c *pipeConn) Write(p []byte) (int, error) { return c.w.Write(p) }

func (c *pipeConn) Close() error {
	c.r.CloseWithError(io.ErrClosedPipe)
	c.w.CloseWithError(io.ErrClosedPipe)
	return nil
}

// CloseRead shuts only the inbound half: our reads (and the peer's writes)
// fail, while our writes still reach the peer — exactly what graceful
// drain needs.
func (c *pipeConn) CloseRead() error { return c.r.CloseWithError(io.EOF) }
