package fileserver

import (
	"bytes"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/pagecache"
	"repro/internal/pmem"
	"repro/internal/sim"
	"repro/internal/vfs"
	"repro/internal/winefs"
	"repro/internal/workloads"
)

// newServerFS is newServer but also returns the backing WineFS, for tests
// that cross-check server-visible state with winefs.Audit.
func newServerFS(t *testing.T, dev *pmem.Device, cfg Config) (*Server, *PipeListener, *winefs.FS) {
	t.Helper()
	ctx := sim.NewCtx(1, 0)
	fs, err := winefs.Mkfs(ctx, dev, winefs.Options{CPUs: testCPUs, Mode: vfs.Strict})
	if err != nil {
		t.Fatalf("mkfs: %v", err)
	}
	if cfg.CPUs == 0 {
		cfg.CPUs = testCPUs
	}
	srv := New(fs, cfg)
	pl := NewPipeListener()
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(pl) }()
	t.Cleanup(func() {
		srv.Shutdown()
		if err := <-serveErr; err != nil {
			t.Errorf("Serve returned %v after shutdown", err)
		}
	})
	return srv, pl, fs
}

func leasePattern(p []byte, gen int) {
	for i := range p {
		p[i] = byte(gen*131 + i*7 + 11)
	}
}

// TestTwoSessionWriteCoherence is the deterministic conflicting-write
// interleaving: session A buffers dirty pages under a write lease, then
// session B opens and reads the same file. The open must revoke A's lease,
// A must flush, and B must observe exactly A's latest bytes — never the
// old generation, never a mix.
func TestTwoSessionWriteCoherence(t *testing.T) {
	srv, pl, _ := newServerFS(t, pmem.New(256<<20), Config{})

	clA := dialT(t, pl)
	cacheA := pagecache.New(clA, pagecache.Config{})
	ctxA := sim.NewCtx(300, 0)

	const size = 2 * pagecache.PageSize
	gen0 := make([]byte, size)
	gen1 := make([]byte, size)
	leasePattern(gen0, 0)
	leasePattern(gen1, 1)

	fA, err := cacheA.Create(ctxA, "/shared")
	if err != nil {
		t.Fatalf("A create: %v", err)
	}
	if _, err := fA.Append(ctxA, gen0); err != nil {
		t.Fatalf("A append: %v", err)
	}
	// The rewrite is buffered: the server still holds gen0.
	if _, err := fA.WriteAt(ctxA, gen1, 0); err != nil {
		t.Fatalf("A rewrite: %v", err)
	}
	if st := cacheA.Stats(); st.DirtyPages != 2 {
		t.Fatalf("A DirtyPages = %d, want 2 buffered pages", st.DirtyPages)
	}
	if err := srv.CheckLeaseInvariant(); err != nil {
		t.Fatalf("invariant with one write holder: %v", err)
	}

	// B's open conflicts: the server revokes A's write lease and waits for
	// the flush before letting the open complete.
	clB := dialT(t, pl)
	ctxB := sim.NewCtx(301, 1)
	fB, err := clB.Open(ctxB, "/shared")
	if err != nil {
		t.Fatalf("B open: %v", err)
	}
	if st := cacheA.Stats(); st.Revokes != 1 || st.DirtyPages != 0 {
		t.Fatalf("after B's open: A stats %+v, want 1 revoke and 0 dirty", st)
	}
	got := make([]byte, size)
	if n, err := fB.ReadAt(ctxB, got, 0); err != nil || n != size {
		t.Fatalf("B read: n=%d err=%v", n, err)
	}
	if !bytes.Equal(got, gen1) {
		if bytes.Equal(got, gen0) {
			t.Fatalf("B read STALE gen0 bytes: A's buffered write was lost")
		}
		t.Fatalf("B read a mix of generations")
	}
	if err := srv.CheckLeaseInvariant(); err != nil {
		t.Fatalf("invariant after revoke: %v", err)
	}

	// A's handle still works pass-through after the revoke.
	if _, err := fA.ReadAt(ctxA, got, 0); err != nil {
		t.Fatalf("A read after revoke: %v", err)
	}
	if !bytes.Equal(got, gen1) {
		t.Fatalf("A reads wrong bytes after revoke")
	}

	if err := fB.Close(ctxB); err != nil {
		t.Fatalf("B close: %v", err)
	}
	if err := fA.Close(ctxA); err != nil {
		t.Fatalf("A close: %v", err)
	}
	if err := cacheA.Unmount(ctxA); err != nil {
		t.Fatalf("A unmount: %v", err)
	}
	if err := clB.Unmount(ctxB); err != nil {
		t.Fatalf("B unmount: %v", err)
	}
}

// TestRevokeTimeoutDrainsHolder checks the liveness guard: a client that
// holds a lease but never acks the revoke is drained after RevokeTimeout,
// and the conflicting writer proceeds rather than hanging forever.
func TestRevokeTimeoutDrainsHolder(t *testing.T) {
	srv, pl, _ := newServerFS(t, pmem.New(256<<20), Config{RevokeTimeout: 100 * time.Millisecond})

	clStuck := dialT(t, pl)
	block := make(chan struct{})
	released := make(chan struct{})
	clStuck.SetRevokeHandler(func(ino uint64) {
		<-block
		close(released)
	})
	defer close(block)

	ctx1 := sim.NewCtx(310, 0)
	f1, err := clStuck.Create(ctx1, "/hostage")
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	if _, err := f1.Append(ctx1, []byte("v0")); err != nil {
		t.Fatalf("append: %v", err)
	}
	if granted, err := f1.(pagecache.Leasable).Lease(ctx1, false); err != nil || !granted {
		t.Fatalf("lease: granted=%v err=%v", granted, err)
	}

	ctx2 := sim.NewCtx(311, 1)
	cl2 := dialT(t, pl)
	f2, err := cl2.Open(ctx2, "/hostage")
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	// The write conflicts with the stuck client's read lease; it must
	// complete despite the missing ack, via the drain.
	start := time.Now()
	if _, err := f2.WriteAt(ctx2, []byte("v1"), 0); err != nil {
		t.Fatalf("conflicting write: %v", err)
	}
	if waited := time.Since(start); waited < 50*time.Millisecond {
		t.Fatalf("write proceeded in %v — revoke was not actually awaited", waited)
	}
	if err := srv.CheckLeaseInvariant(); err != nil {
		t.Fatalf("invariant after drain: %v", err)
	}
	select {
	case <-released:
		t.Fatalf("handler finished — drain should have happened while it was stuck")
	default:
	}
	// The stuck session was drained: its next request fails.
	waitFor(t, "stuck session drained", func() bool {
		_, err := clStuck.Stat(ctx1, "/hostage")
		return err != nil
	})
	if err := f2.Close(ctx2); err != nil {
		t.Fatalf("close: %v", err)
	}
	if err := cl2.Unmount(ctx2); err != nil {
		t.Fatalf("unmount: %v", err)
	}
}

// TestCachedAuditNoLostWriteback is the writeback-conservation audit: after
// a cached client finishes and the server drains, every logical byte the
// client wrote is accounted for as either flushed write-back or
// write-through — and the server-visible content plus winefs.Audit agree.
func TestCachedAuditNoLostWriteback(t *testing.T) {
	srv, pl, fs := newServerFS(t, pmem.New(256<<20), Config{})

	cl := dialT(t, pl)
	cache := pagecache.New(cl, pagecache.Config{})
	ctx := sim.NewCtx(320, 0)

	const files = 4
	const size = 3 * pagecache.PageSize
	var logicalBytes int64
	oracle := make([][]byte, files)
	for i := 0; i < files; i++ {
		f, err := cache.Create(ctx, fmt.Sprintf("/a%d", i))
		if err != nil {
			t.Fatalf("create %d: %v", i, err)
		}
		base := make([]byte, size)
		leasePattern(base, i)
		if _, err := f.Append(ctx, base); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		logicalBytes += size
		rew := make([]byte, size)
		leasePattern(rew, i+100)
		if _, err := f.WriteAt(ctx, rew, 0); err != nil {
			t.Fatalf("rewrite %d: %v", i, err)
		}
		logicalBytes += size
		oracle[i] = rew
		if err := f.Close(ctx); err != nil {
			t.Fatalf("close %d: %v", i, err)
		}
	}

	st := cache.Stats()
	if st.DirtyPages != 0 {
		t.Fatalf("DirtyPages = %d after all closes, want 0", st.DirtyPages)
	}
	if got := st.FlushedBytes + st.WriteThroughBytes; got != logicalBytes {
		t.Fatalf("byte conservation broken: flushed %d + write-through %d = %d, client wrote %d",
			st.FlushedBytes, st.WriteThroughBytes, got, logicalBytes)
	}
	if err := srv.CheckLeaseInvariant(); err != nil {
		t.Fatalf("invariant: %v", err)
	}

	// Server-visible bytes: a second, uncached session must read exactly
	// the oracle image.
	cl2 := dialT(t, pl)
	ctx2 := sim.NewCtx(321, 1)
	for i := 0; i < files; i++ {
		f, err := cl2.Open(ctx2, fmt.Sprintf("/a%d", i))
		if err != nil {
			t.Fatalf("verify open %d: %v", i, err)
		}
		got := make([]byte, size)
		if n, err := f.ReadAt(ctx2, got, 0); err != nil || n != size {
			t.Fatalf("verify read %d: n=%d err=%v", i, n, err)
		}
		if !bytes.Equal(got, oracle[i]) {
			t.Fatalf("file %d: server content differs from client oracle", i)
		}
		if err := f.Close(ctx2); err != nil {
			t.Fatalf("verify close %d: %v", i, err)
		}
	}
	if err := cl2.Unmount(ctx2); err != nil {
		t.Fatalf("verify unmount: %v", err)
	}
	if err := cache.Unmount(ctx); err != nil {
		t.Fatalf("unmount: %v", err)
	}
	if got := srv.Stats().OpenHandles; got != 0 {
		t.Fatalf("server still holds %d open handles after drain", got)
	}
	// The on-media structures survived the whole lease dance.
	if err := fs.Audit(sim.NewCtx(50, 0)); err != nil {
		t.Fatalf("winefs audit: %v", err)
	}
}

// TestCacheRace8Sessions hammers a small shared working set from 8 cached
// sessions concurrently. Run under -race this is the CI cache-race step;
// here it checks the lease invariant holds throughout and that the
// machinery converges (sessions may be drained by cross-revoke timeouts —
// that is the documented degradation — but the server must stay sound).
func TestCacheRace8Sessions(t *testing.T) {
	srv, pl, fs := newServerFS(t, pmem.New(256<<20),
		Config{RevokeTimeout: 500 * time.Millisecond})

	setup := dialT(t, pl)
	setupCtx := sim.NewCtx(330, 0)
	const shared = 4
	const size = 2 * pagecache.PageSize
	buf := make([]byte, size)
	for i := 0; i < shared; i++ {
		f, err := setup.Create(setupCtx, fmt.Sprintf("/r%d", i))
		if err != nil {
			t.Fatalf("setup create: %v", err)
		}
		leasePattern(buf, i)
		if _, err := f.Append(setupCtx, buf); err != nil {
			t.Fatalf("setup append: %v", err)
		}
		if err := f.Close(setupCtx); err != nil {
			t.Fatalf("setup close: %v", err)
		}
	}

	const sessions = 8
	const rounds = 6
	var wg sync.WaitGroup
	var okRounds [sessions]int
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl := dialT(t, pl)
			cache := pagecache.New(cl, pagecache.Config{})
			ctx := sim.NewCtx(340+i, i%testCPUs)
			data := make([]byte, size)
			rbuf := make([]byte, size)
			for j := 0; j < rounds; j++ {
				// A drained session (cross-revoke timeout) ends this
				// client's run; everything before the drain must have been
				// clean.
				f, err := cache.Open(ctx, fmt.Sprintf("/r%d", (i+j)%shared))
				if err != nil {
					return
				}
				if _, err := f.ReadAt(ctx, rbuf, 0); err != nil {
					return
				}
				leasePattern(data, 1000+i*rounds+j)
				if _, err := f.WriteAt(ctx, data, 0); err != nil {
					return
				}
				if err := f.Close(ctx); err != nil {
					return
				}
				okRounds[i]++
			}
			cache.Unmount(ctx)
		}(i)
	}
	wg.Wait()

	if err := srv.CheckLeaseInvariant(); err != nil {
		t.Fatalf("invariant after the storm: %v", err)
	}
	total := 0
	for i := range okRounds {
		total += okRounds[i]
	}
	if total == 0 {
		t.Fatalf("no session completed a single round")
	}
	// Every file still has its full size and consistent metadata.
	verify := dialT(t, pl)
	vctx := sim.NewCtx(360, 0)
	for i := 0; i < shared; i++ {
		fi, err := verify.Stat(vctx, fmt.Sprintf("/r%d", i))
		if err != nil {
			t.Fatalf("verify stat: %v", err)
		}
		if fi.Size != size {
			t.Fatalf("file %d size %d, want %d", i, fi.Size, size)
		}
	}
	if err := verify.Unmount(vctx); err != nil {
		t.Fatalf("verify unmount: %v", err)
	}
	if err := fs.Audit(sim.NewCtx(51, 0)); err != nil {
		t.Fatalf("winefs audit: %v", err)
	}
}

// TestCachedServerMixThroughCache runs the full ServerMix op mix through a
// cached client against a live server: every oracle check inside the
// workload doubles as a coherence check on the cache.
func TestCachedServerMixThroughCache(t *testing.T) {
	_, pl, _ := newServerFS(t, pmem.New(512<<20), Config{})
	const clients = 3
	var wg sync.WaitGroup
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cl := dialT(t, pl)
			cache := pagecache.New(cl, pagecache.Config{})
			ctx := sim.NewCtx(370+i, i%testCPUs)
			_, errs[i] = workloads.ServerMixClient(ctx, cache, i,
				workloads.ServerMixConfig{Ops: 40, Seed: 7})
			if errs[i] == nil {
				errs[i] = cache.Unmount(ctx)
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("cached client %d: %v", i, err)
		}
	}
}
