package fileserver

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/pmem"
	"repro/internal/sim"
)

// TestErrServerGoneTyped: a transport death the client did not cause must
// surface as ErrServerGone (the failover trigger), which still satisfies
// errors.Is(err, ErrConnClosed) for callers with the older contract.
func TestErrServerGoneTyped(t *testing.T) {
	srv, pl := newServer(t, pmem.New(256<<20), Config{})
	cl := dialT(t, pl)
	ctx := sim.NewCtx(800, 0)

	if err := cl.Mkdir(ctx, "/gone"); err != nil {
		t.Fatalf("mkdir: %v", err)
	}

	srv.Shutdown() // server goes away under the client

	var err error
	waitFor(t, "transport death to surface", func() bool {
		err = cl.Mkdir(ctx, "/gone2")
		return err != nil
	})
	if !errors.Is(err, ErrServerGone) {
		t.Fatalf("post-shutdown error = %v, want ErrServerGone", err)
	}
	if !errors.Is(err, ErrConnClosed) {
		t.Fatalf("ErrServerGone must wrap ErrConnClosed, got %v", err)
	}
}

// TestLocalCloseIsNotServerGone: the client closing its own connection is
// a deliberate act, not a lost server — a failover layer must not react.
func TestLocalCloseIsNotServerGone(t *testing.T) {
	_, pl := newServer(t, pmem.New(256<<20), Config{})
	cl := dialT(t, pl)
	ctx := sim.NewCtx(801, 0)

	if err := cl.Mkdir(ctx, "/local"); err != nil {
		t.Fatalf("mkdir: %v", err)
	}
	if err := cl.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	err := cl.Mkdir(ctx, "/local2")
	if !errors.Is(err, ErrConnClosed) {
		t.Fatalf("post-close error = %v, want ErrConnClosed", err)
	}
	if errors.Is(err, ErrServerGone) {
		t.Fatalf("local close misreported as ErrServerGone: %v", err)
	}
}

// TestShutdownCtxBoundedByWedgedClient: a session whose peer stops reading
// wedges the graceful drain once the transport's buffer fills; ShutdownCtx
// must cut it at the context deadline instead of hanging forever.
func TestShutdownCtxBoundedByWedgedClient(t *testing.T) {
	srv, pl := newServer(t, pmem.New(256<<20), Config{RevokeTimeout: 30 * time.Second})

	// Hand-rolled session: handshake, request a response bigger than the
	// pipe buffer, never read the reply — the worker blocks writing it.
	conn, err := pl.Dial()
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer conn.Close()
	var e enc
	e.u32(ProtoVersion)
	if err := WriteFrame(conn, 1, uint8(opHello), e.b); err != nil {
		t.Fatalf("hello: %v", err)
	}
	if _, _, _, err := ReadFrame(conn); err != nil {
		t.Fatalf("hello ack: %v", err)
	}
	e = enc{}
	e.str("/wedge")
	if err := WriteFrame(conn, 2, uint8(opCreate), e.b); err != nil {
		t.Fatalf("create req: %v", err)
	}
	_, _, resp, err := ReadFrame(conn)
	if err != nil || len(resp) < 16 {
		t.Fatalf("create ack: %d bytes, %v", len(resp), err)
	}
	h := newDec(resp[8:]).u64() // skip costNS, take the handle
	const big = 2 << 20         // 2MiB response >> bufPipeMax
	e = enc{}
	e.u64(h)
	e.i64(0)
	e.i64(big)
	if err := WriteFrame(conn, 3, uint8(opFallocate), e.b); err != nil {
		t.Fatalf("fallocate req: %v", err)
	}
	if _, _, _, err := ReadFrame(conn); err != nil {
		t.Fatalf("fallocate ack: %v", err)
	}
	e = enc{}
	e.u64(h)
	e.i64(0)
	e.u32(big)
	if err := WriteFrame(conn, 4, uint8(opRead), e.b); err != nil {
		t.Fatalf("read req: %v", err)
	}
	// Give the server time to pick up the request and block on the reply.
	time.Sleep(50 * time.Millisecond)

	cctx, cancel := context.WithTimeout(context.Background(), 200*time.Millisecond)
	defer cancel()
	start := time.Now()
	err = srv.ShutdownCtx(cctx)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("ShutdownCtx returned nil with a wedged session")
	}
	if elapsed > 5*time.Second {
		t.Fatalf("ShutdownCtx took %v; the context bound did not hold", elapsed)
	}
}
