package fileserver

import "time"

// Server-side lease tracking. A lease is the server's promise that it will
// tell the holding session before any other session observes or changes the
// file, which is what lets the client-side page cache (internal/pagecache)
// serve reads from DRAM and buffer writes without breaking coherence.
//
// Invariant: per ino there is at most one write-lease holder and never a
// writer coexisting with readers from other sessions ("at most one
// write-lease holder per file"). A conflicting request revokes every
// incompatible holder and waits for their acks — revoke-before-grant — so
// by the time the request touches the FS, every dirty page the old holder
// buffered has been flushed and dropped.
//
// The revoke wait happens before the dispatching worker takes any FS or
// vfs.LockTable lock, so a lease wait can never deadlock against the lock
// table; the only possible cycle is worker↔worker cross-revoke, which the
// wall-clock RevokeTimeout breaks by draining the unresponsive holder
// through the same closeRead path graceful shutdown uses (DESIGN.md §9).

// fileLease records who holds a lease on one ino.
type fileLease struct {
	writer  *session
	readers map[*session]struct{}
}

func (l *fileLease) empty() bool { return l.writer == nil && len(l.readers) == 0 }

// holds reports whether sess holds any lease on l.
func (l *fileLease) holds(sess *session) bool {
	if l.writer == sess {
		return true
	}
	_, ok := l.readers[sess]
	return ok
}

// conflictsWith lists every holder a (write?) request from sess must
// revoke: any other session's writer always conflicts; other sessions'
// readers conflict only with writes.
func (l *fileLease) conflictsWith(sess *session, write bool) []*session {
	var out []*session
	if l.writer != nil && l.writer != sess {
		out = append(out, l.writer)
	}
	if write {
		for r := range l.readers {
			if r != sess {
				out = append(out, r)
			}
		}
	}
	return out
}

// revokeConflicting revokes every lease on ino that conflicts with the
// given access from sess and blocks until each victim acks (or times out
// and is drained). It returns how many leases were revoked. Must be called
// by sess's worker BEFORE the FS operation — see the deadlock note above.
func (s *Server) revokeConflicting(sess *session, ino uint64, write bool) int {
	s.leaseMu.Lock()
	l := s.leases[ino]
	if l == nil {
		s.leaseMu.Unlock()
		return 0
	}
	victims := l.conflictsWith(sess, write)
	if len(victims) == 0 {
		s.leaseMu.Unlock()
		return 0
	}
	waits := make([]chan struct{}, len(victims))
	for i, v := range victims {
		ch := make(chan struct{})
		first := len(v.revokeWaiters[ino]) == 0
		v.revokeWaiters[ino] = append(v.revokeWaiters[ino], ch)
		waits[i] = ch
		if first {
			// Push outside leaseMu: a stuck transport must not wedge the
			// whole lease table.
			go v.pushRevoke(ino)
		}
	}
	s.leaseMu.Unlock()

	timeout := s.cfg.RevokeTimeout
	for i, ch := range waits {
		select {
		case <-ch:
		case <-time.After(timeout):
			// The holder did not flush in time. Reuse the graceful-drain
			// path: shut its read side so its session winds down like any
			// drained client, force-drop its leases so this (and every
			// other queued) request can proceed, and let teardown reap the
			// handles. Coherence holds because the holder's connection is
			// dead: any writeback it still attempts fails client-side and
			// surfaces as an error there, never as silent staleness here.
			closeRead(victims[i].conn)
			s.dropSessionLeases(victims[i])
			<-ch
		}
	}
	if sess != nil {
		sess.ctx.Counters.CacheRevokes += int64(len(victims))
	}
	return len(victims)
}

// pushRevoke sends the statusRevoke frame for ino to the session's client.
// Runs on its own goroutine; wmu keeps the push from interleaving with the
// worker's response frames.
func (sess *session) pushRevoke(ino uint64) {
	sess.wmu.Lock()
	defer sess.wmu.Unlock()
	// Push frames have no request id; the id field carries the ino.
	WriteFrame(sess.conn, ino, statusRevoke, nil)
}

// leaseAcked handles an opLeaseAck from sess: its lease on ino is gone and
// every request blocked on that revocation may proceed.
func (s *Server) leaseAcked(sess *session, ino uint64) {
	s.leaseMu.Lock()
	defer s.leaseMu.Unlock()
	s.removeHolderLocked(sess, ino)
}

// dropSessionLeases releases every lease sess holds and wakes every waiter
// blocked on it — teardown and revoke timeouts both funnel here.
func (s *Server) dropSessionLeases(sess *session) {
	s.leaseMu.Lock()
	defer s.leaseMu.Unlock()
	for ino, l := range s.leases {
		if l.holds(sess) {
			s.removeHolderLocked(sess, ino)
		}
	}
}

// removeHolderLocked drops sess's lease on ino and closes its pending
// revoke waiters. Caller holds leaseMu.
func (s *Server) removeHolderLocked(sess *session, ino uint64) {
	if l := s.leases[ino]; l != nil {
		if l.writer == sess {
			l.writer = nil
		}
		delete(l.readers, sess)
		if l.empty() {
			delete(s.leases, ino)
		}
	}
	for _, ch := range sess.revokeWaiters[ino] {
		close(ch)
	}
	delete(sess.revokeWaiters, ino)
}

// acquireLease grants sess a lease on ino, revoking conflicting holders
// first. It retries a bounded number of times (another session can slip a
// new conflicting lease in between the revoke and the grant) and then
// refuses rather than livelock; a refused client simply runs uncached.
func (s *Server) acquireLease(sess *session, ino uint64, write bool) bool {
	// A locally mapped inode is never leased: DAX stores through the
	// mapping would go stale in any client cache. Refused clients serve
	// the file uncached, which is coherent by construction.
	if s.mapped != nil && s.mapped.MappedCount(ino) > 0 {
		return false
	}
	for tries := 0; tries < 8; tries++ {
		s.revokeConflicting(sess, ino, write)
		s.leaseMu.Lock()
		l := s.leases[ino]
		if l == nil {
			l = &fileLease{readers: make(map[*session]struct{})}
			s.leases[ino] = l
		}
		if len(l.conflictsWith(sess, write)) == 0 {
			if write {
				l.writer = sess
				delete(l.readers, sess)
			} else if l.writer != sess {
				// A write lease subsumes read; don't downgrade.
				l.readers[sess] = struct{}{}
			}
			s.leaseMu.Unlock()
			return true
		}
		s.leaseMu.Unlock()
	}
	return false
}

// releaseLease voluntarily drops sess's lease on ino.
func (s *Server) releaseLease(sess *session, ino uint64) {
	s.leaseMu.Lock()
	defer s.leaseMu.Unlock()
	s.removeHolderLocked(sess, ino)
}

// CheckLeaseInvariant verifies the coherence invariant over the live lease
// table: at most one writer per ino and never a writer alongside readers.
// Test hook; returns nil when the table is consistent.
func (s *Server) CheckLeaseInvariant() error {
	s.leaseMu.Lock()
	defer s.leaseMu.Unlock()
	for ino, l := range s.leases {
		if l.writer != nil && len(l.readers) > 0 {
			return errLeaseInvariant(ino)
		}
	}
	return nil
}

type errLeaseInvariant uint64

func (e errLeaseInvariant) Error() string {
	return "fileserver: lease invariant violated: ino has a writer and readers"
}
