package fileserver

import (
	"sync"

	"repro/internal/alloc"
	"repro/internal/mmu"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// Client is a remote mount: it implements vfs.FS over a Conn, so the
// workload drivers in internal/workloads run against a served file system
// without modification. A single Client is safe for concurrent use by many
// goroutines; requests are multiplexed by id and responses demultiplexed
// by a dedicated reader goroutine, so concurrent callers pipeline
// naturally into the server's bounded window.
//
// Virtual time: every response carries the virtual nanoseconds the server
// charged its session for the request, and the calling ctx is advanced by
// exactly that, so throughput and latency measured at the client are the
// served numbers. (Network latency itself is not modelled; the transports
// are a rendezvous.)
type Client struct {
	conn  Conn
	name  string
	mode  vfs.ConsistencyMode
	epoch uint64
	// dc is non-nil when conn supports direct dispatch (in-memory pipe);
	// call checks its published entry point on every request.
	dc directConn

	wmu sync.Mutex // serialises frame writes

	mu         sync.Mutex
	pending    map[uint64]chan respFrame
	nextID     uint64
	closed     bool
	localClose bool // the client itself closed the conn (Close/Unmount)

	// onRevoke, when set, runs for every server lease-revoke push before
	// the client acks it. The page cache installs its flush-and-invalidate
	// here.
	revokeMu sync.Mutex
	onRevoke func(ino uint64)
}

type respFrame struct {
	st      status
	payload []byte
}

// respChanPool recycles the per-call response channels; a scaling sweep
// makes millions of calls and the per-call makechan showed up in profiles.
var respChanPool = sync.Pool{New: func() any { return make(chan respFrame, 1) }}

var _ vfs.FS = (*Client)(nil)

// Dial performs the protocol handshake over an established connection and
// returns the remote mount.
func Dial(conn Conn) (*Client, error) {
	c := &Client{conn: conn, pending: make(map[uint64]chan respFrame)}
	c.dc, _ = conn.(directConn)
	go c.readLoop()
	e := reqEnc(0)
	e.u32(ProtoVersion)
	d, err := c.call(nil, opHello, e.b)
	if err != nil {
		conn.Close()
		return nil, err
	}
	d.u32() // server protocol version (equal or the handshake would have failed)
	c.name = d.str()
	c.mode = vfs.ConsistencyMode(d.u8())
	d.u32() // server CPUs
	d.u32() // server window
	c.epoch = d.u64()
	if !d.ok() {
		conn.Close()
		return nil, ErrBadRequest
	}
	return c, nil
}

// ServerEpoch reports the primary epoch the server announced at handshake.
// Failover clients use it to fence: a server whose epoch is below the
// highest one the client has seen is a stale primary and must not be
// trusted with writes.
func (c *Client) ServerEpoch() uint64 { return c.epoch }

// dead reports whether this client's transport is closed from its own
// point of view (either side).
func (c *Client) dead() bool {
	c.mu.Lock()
	d := c.closed || c.localClose
	c.mu.Unlock()
	return d
}

// transportErr picks the right sentinel for a dead transport: ErrConnClosed
// if this client closed the connection itself, ErrServerGone if the far
// side vanished underneath it.
func (c *Client) transportErr() error {
	c.mu.Lock()
	local := c.localClose
	c.mu.Unlock()
	if local {
		return ErrConnClosed
	}
	return ErrServerGone
}

// readLoop demultiplexes responses to their waiting callers. On transport
// death every waiter is woken with ErrConnClosed.
func (c *Client) readLoop() {
	for {
		id, code, payload, err := ReadFrame(c.conn)
		if err != nil {
			c.mu.Lock()
			c.closed = true
			for _, ch := range c.pending {
				close(ch)
			}
			c.pending = make(map[uint64]chan respFrame)
			c.mu.Unlock()
			return
		}
		if code == statusRevoke {
			// Server push, not a response: the id field carries the
			// revoked ino. Handle on a fresh goroutine — the handler
			// flushes dirty pages through this very connection, so it must
			// not block the demultiplexer.
			go c.handleRevoke(id)
			continue
		}
		c.mu.Lock()
		ch := c.pending[id]
		delete(c.pending, id)
		c.mu.Unlock()
		if ch != nil {
			ch <- respFrame{st: status(code), payload: payload}
		}
	}
}

// SetRevokeHandler installs the callback run when the server revokes a
// lease. The handler must flush and drop every cached page and attribute
// for the ino before returning; the client acks the revoke only after it
// returns, and the server holds the conflicting request until that ack.
func (c *Client) SetRevokeHandler(h func(ino uint64)) {
	c.revokeMu.Lock()
	c.onRevoke = h
	c.revokeMu.Unlock()
}

// handleRevoke runs the installed revoke handler (if any) and acks.
func (c *Client) handleRevoke(ino uint64) {
	c.revokeMu.Lock()
	h := c.onRevoke
	c.revokeMu.Unlock()
	if h != nil {
		h(ino)
	}
	e := reqEnc(0)
	e.u64(ino)
	// Best effort: if the connection died the server's teardown drops the
	// lease anyway.
	c.call(nil, opLeaseAck, e.b)
}

// call issues one request and blocks for its response. ctx (nil for the
// handshake) is advanced by the server-charged virtual cost whether the
// request succeeded or not — failed syscalls cost time too. The request
// is built by reqEnc (frame header pre-reserved) and
// blocks for its response. A nil payload sends an empty request.
func (c *Client) call(ctx *sim.Ctx, o op, payload []byte) (*dec, error) {
	if payload == nil {
		payload = make([]byte, frameHdrLen)
	}
	if c.dc != nil {
		// Direct dispatch (in-process transports): run the server's
		// request path on this goroutine and get the response frame back
		// synchronously — no framing, no demux, no goroutine handoffs. A
		// client that closed (or lost) its connection must keep failing
		// like one, even while the server session is still tearing down.
		if sd := c.dc.getDirect(); sd != nil && !c.dead() {
			if st, body, ok := sd.call(o, payload[frameHdrLen:]); ok {
				d := newDec(body)
				cost := d.u64()
				if ctx != nil {
					ctx.Advance(int64(cost))
				}
				if st != statusOK {
					return nil, errFor(st, d.str())
				}
				return d, nil
			}
		}
	}
	// Response channels are pooled: one per in-flight call, returned once
	// the response is received. A channel is never pooled after readLoop
	// closed it (transport death), so pooled channels are always open and
	// empty.
	ch := respChanPool.Get().(chan respFrame)
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		respChanPool.Put(ch)
		return nil, c.transportErr()
	}
	id := c.nextID
	c.nextID++
	c.pending[id] = ch
	c.mu.Unlock()

	c.wmu.Lock()
	err := writeOwnedFrame(c.conn, id, uint8(o), payload)
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, id)
		// If readLoop already ran its teardown it closed our channel;
		// only an unclosed channel may be reused.
		reusable := !c.closed
		c.mu.Unlock()
		if reusable {
			respChanPool.Put(ch)
		}
		return nil, c.transportErr()
	}

	f, ok := <-ch
	if !ok {
		return nil, c.transportErr()
	}
	respChanPool.Put(ch)
	d := newDec(f.payload)
	cost := d.u64()
	if ctx != nil {
		ctx.Advance(int64(cost))
	}
	if f.st != statusOK {
		return nil, errFor(f.st, d.str())
	}
	return d, nil
}

// reqEnc returns an encoder with the frame header pre-reserved, so call
// can finish the request frame in place (see writeOwnedFrame). extra
// hints the payload size beyond the fixed span.
func reqEnc(extra int) enc {
	return enc{b: make([]byte, frameHdrLen, frameHdrLen+24+extra)}
}

// pathCall is the shape shared by Mkdir/Unlink/Rmdir.
func (c *Client) pathCall(ctx *sim.Ctx, o op, path string) error {
	e := reqEnc(0)
	e.str(path)
	_, err := c.call(ctx, o, e.b)
	return err
}

// Name implements vfs.FS; it reports the served file system's name.
func (c *Client) Name() string { return c.name }

// Mode implements vfs.FS.
func (c *Client) Mode() vfs.ConsistencyMode { return c.mode }

func (c *Client) openLike(ctx *sim.Ctx, o op, path string) (vfs.File, error) {
	e := reqEnc(0)
	e.str(path)
	d, err := c.call(ctx, o, e.b)
	if err != nil {
		return nil, err
	}
	f := &remoteFile{c: c, handle: d.u64(), ino: d.u64(), size: d.i64()}
	if !d.ok() {
		return nil, ErrBadRequest
	}
	return f, nil
}

// Create implements vfs.FS.
func (c *Client) Create(ctx *sim.Ctx, path string) (vfs.File, error) {
	return c.openLike(ctx, opCreate, path)
}

// Open implements vfs.FS.
func (c *Client) Open(ctx *sim.Ctx, path string) (vfs.File, error) {
	return c.openLike(ctx, opOpen, path)
}

// Mkdir implements vfs.FS.
func (c *Client) Mkdir(ctx *sim.Ctx, path string) error {
	return c.pathCall(ctx, opMkdir, path)
}

// Unlink implements vfs.FS.
func (c *Client) Unlink(ctx *sim.Ctx, path string) error {
	return c.pathCall(ctx, opUnlink, path)
}

// Rmdir implements vfs.FS.
func (c *Client) Rmdir(ctx *sim.Ctx, path string) error {
	return c.pathCall(ctx, opRmdir, path)
}

// Rename implements vfs.FS.
func (c *Client) Rename(ctx *sim.Ctx, oldPath, newPath string) error {
	e := reqEnc(0)
	e.str(oldPath)
	e.str(newPath)
	_, err := c.call(ctx, opRename, e.b)
	return err
}

// Stat implements vfs.FS.
func (c *Client) Stat(ctx *sim.Ctx, path string) (vfs.FileInfo, error) {
	e := reqEnc(0)
	e.str(path)
	d, err := c.call(ctx, opStat, e.b)
	if err != nil {
		return vfs.FileInfo{}, err
	}
	fi := vfs.FileInfo{
		Ino:   d.u64(),
		Size:  d.i64(),
		IsDir: d.u8() != 0,
		Nlink: int(d.u32()),
	}
	if !d.ok() {
		return vfs.FileInfo{}, ErrBadRequest
	}
	return fi, nil
}

// ReadDir implements vfs.FS.
func (c *Client) ReadDir(ctx *sim.Ctx, path string) ([]vfs.DirEntry, error) {
	e := reqEnc(0)
	e.str(path)
	d, err := c.call(ctx, opReadDir, e.b)
	if err != nil {
		return nil, err
	}
	n := d.u32()
	ents := make([]vfs.DirEntry, 0, n)
	for i := uint32(0); i < n && d.ok(); i++ {
		ents = append(ents, vfs.DirEntry{
			Name:  d.str(),
			Ino:   d.u64(),
			IsDir: d.u8() != 0,
		})
	}
	if !d.ok() {
		return nil, ErrBadRequest
	}
	return ents, nil
}

// StatFS implements vfs.FS. A dead connection reports a zero StatFS (the
// interface has no error return).
func (c *Client) StatFS(ctx *sim.Ctx) vfs.StatFS {
	d, err := c.call(ctx, opStatFS, nil)
	if err != nil {
		return vfs.StatFS{}
	}
	return vfs.StatFS{
		TotalBlocks:   d.i64(),
		FreeBlocks:    d.i64(),
		FreeAligned2M: d.i64(),
		Files:         d.i64(),
	}
}

// FreeExtents implements vfs.FS. The physical free-space map is a local
// concern of the served file system; a remote mount has no view of it.
func (c *Client) FreeExtents() []alloc.Extent { return nil }

// Unmount implements vfs.FS: it detaches from the server (closing this
// session's handles server-side) and closes the connection. The served
// file system itself stays mounted for other clients.
func (c *Client) Unmount(ctx *sim.Ctx) error {
	_, err := c.call(ctx, opDetach, nil)
	c.Close()
	return err
}

// Close tears the connection down without the detach round trip.
func (c *Client) Close() error {
	c.mu.Lock()
	c.localClose = true
	c.mu.Unlock()
	return c.conn.Close()
}

// remoteFile is an open handle on a served file. Safe for concurrent use;
// the cached size is refreshed from every size-changing response.
type remoteFile struct {
	c      *Client
	handle uint64
	ino    uint64

	mu   sync.Mutex
	size int64
}

var _ vfs.File = (*remoteFile)(nil)

// Ino implements vfs.File.
func (f *remoteFile) Ino() uint64 { return f.ino }

// Size implements vfs.File; it returns the size as of the last response
// that reported one (writes through other clients move it server-side).
func (f *remoteFile) Size() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.size
}

func (f *remoteFile) setSize(s int64) {
	f.mu.Lock()
	f.size = s
	f.mu.Unlock()
}

// ReadAt implements vfs.File, splitting large reads into maxIO frames.
// Like the local file systems it truncates reads past EOF and returns
// (0, nil) at EOF.
func (f *remoteFile) ReadAt(ctx *sim.Ctx, p []byte, off int64) (int, error) {
	total := 0
	for total < len(p) {
		chunk := len(p) - total
		if chunk > maxIO {
			chunk = maxIO
		}
		e := reqEnc(0)
		e.u64(f.handle)
		e.i64(off + int64(total))
		e.u32(uint32(chunk))
		d, err := f.c.call(ctx, opRead, e.b)
		if err != nil {
			return total, err
		}
		data := d.bytes()
		if !d.ok() {
			return total, ErrBadRequest
		}
		copy(p[total:], data)
		total += len(data)
		if len(data) < chunk {
			break // EOF
		}
	}
	return total, nil
}

// writeLike shares the chunking loop between WriteAt and Append.
func (f *remoteFile) writeLike(ctx *sim.Ctx, o op, p []byte, off int64) (int, error) {
	total := 0
	for {
		chunk := len(p) - total
		if chunk > maxIO {
			chunk = maxIO
		}
		e := reqEnc(4 + chunk)
		e.u64(f.handle)
		if o == opWrite {
			e.i64(off + int64(total))
		}
		e.bytes(p[total : total+chunk])
		d, err := f.c.call(ctx, o, e.b)
		if err != nil {
			return total, err
		}
		n := int(d.u32())
		size := d.i64()
		if !d.ok() {
			return total, ErrBadRequest
		}
		f.setSize(size)
		total += n
		if n < chunk || total >= len(p) {
			return total, nil
		}
	}
}

// WriteAt implements vfs.File.
func (f *remoteFile) WriteAt(ctx *sim.Ctx, p []byte, off int64) (int, error) {
	return f.writeLike(ctx, opWrite, p, off)
}

// Append implements vfs.File.
func (f *remoteFile) Append(ctx *sim.Ctx, p []byte) (int, error) {
	return f.writeLike(ctx, opAppend, p, 0)
}

// Truncate implements vfs.File.
func (f *remoteFile) Truncate(ctx *sim.Ctx, size int64) error {
	e := reqEnc(0)
	e.u64(f.handle)
	e.i64(size)
	d, err := f.c.call(ctx, opTruncate, e.b)
	if err != nil {
		return err
	}
	f.setSize(d.i64())
	return nil
}

// Fallocate implements vfs.File.
func (f *remoteFile) Fallocate(ctx *sim.Ctx, off, n int64) error {
	e := reqEnc(0)
	e.u64(f.handle)
	e.i64(off)
	e.i64(n)
	d, err := f.c.call(ctx, opFallocate, e.b)
	if err != nil {
		return err
	}
	f.setSize(d.i64())
	return nil
}

// Lease asks the server for a cache lease on this handle's file: shared
// for write=false, exclusive for write=true. It reports whether the lease
// was granted; a refusal (the server bounds revoke retries rather than
// livelock) just means the caller must run uncached. pagecache.Cache is
// the intended caller, via its Leasable interface.
func (f *remoteFile) Lease(ctx *sim.Ctx, write bool) (bool, error) {
	mode := leaseRead
	if write {
		mode = leaseWrite
	}
	e := reqEnc(0)
	e.u64(f.handle)
	e.u8(mode)
	d, err := f.c.call(ctx, opLease, e.b)
	if err != nil {
		return false, err
	}
	granted := d.u8() != 0
	if !d.ok() {
		return false, ErrBadRequest
	}
	return granted, nil
}

// Unlease voluntarily releases any lease held through this handle.
func (f *remoteFile) Unlease(ctx *sim.Ctx) error {
	e := reqEnc(0)
	e.u64(f.handle)
	e.u8(leaseNone)
	_, err := f.c.call(ctx, opLease, e.b)
	return err
}

// Fsync implements vfs.File.
func (f *remoteFile) Fsync(ctx *sim.Ctx) error {
	e := reqEnc(0)
	e.u64(f.handle)
	_, err := f.c.call(ctx, opFsync, e.b)
	return err
}

// Mmap implements vfs.File. A remote client shares no address space with
// the server, so mapping is not supported (SplitFS-style client-side
// mapping would need the data path split out of the protocol — a later
// PR's problem).
func (f *remoteFile) Mmap(ctx *sim.Ctx, length int64) (*mmu.Mapping, error) {
	return nil, ErrNotSupported
}

// Extents implements vfs.File; physical layout is not visible remotely.
func (f *remoteFile) Extents() []mmu.Extent { return nil }

// SetXattr implements vfs.File.
func (f *remoteFile) SetXattr(ctx *sim.Ctx, name string, value []byte) error {
	e := reqEnc(0)
	e.u64(f.handle)
	e.str(name)
	e.bytes(value)
	_, err := f.c.call(ctx, opSetXattr, e.b)
	return err
}

// GetXattr implements vfs.File.
func (f *remoteFile) GetXattr(ctx *sim.Ctx, name string) ([]byte, bool) {
	e := reqEnc(0)
	e.u64(f.handle)
	e.str(name)
	d, err := f.c.call(ctx, opGetXattr, e.b)
	if err != nil {
		return nil, false
	}
	ok := d.u8() != 0
	val := append([]byte(nil), d.bytes()...)
	if !d.ok() || !ok {
		return nil, false
	}
	return val, true
}

// Close implements vfs.File.
func (f *remoteFile) Close(ctx *sim.Ctx) error {
	e := reqEnc(0)
	e.u64(f.handle)
	_, err := f.c.call(ctx, opCloseHandle, e.b)
	return err
}
