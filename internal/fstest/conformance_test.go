package fstest

import (
	"bytes"
	"fmt"
	"testing"

	"repro/internal/alloc"
	"repro/internal/pmem"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// forAll runs fn against every file system implementation.
func forAll(t *testing.T, fn func(t *testing.T, fs vfs.FS, ctx *sim.Ctx)) {
	for _, m := range All(4) {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			ctx := sim.NewCtx(1, 0)
			dev := pmem.New(256 << 20)
			fs, err := m.Make(ctx, dev)
			if err != nil {
				t.Fatal(err)
			}
			fn(t, fs, ctx)
		})
	}
}

func TestConformanceBasicIO(t *testing.T) {
	forAll(t, func(t *testing.T, fs vfs.FS, ctx *sim.Ctx) {
		f, err := fs.Create(ctx, "/file")
		if err != nil {
			t.Fatal(err)
		}
		data := make([]byte, 100000)
		for i := range data {
			data[i] = byte(i * 7)
		}
		if n, err := f.WriteAt(ctx, data, 0); err != nil || n != len(data) {
			t.Fatalf("write: %d %v", n, err)
		}
		got := make([]byte, len(data))
		if n, err := f.ReadAt(ctx, got, 0); err != nil || n != len(data) {
			t.Fatalf("read: %d %v", n, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("round trip mismatch")
		}
		if err := f.Fsync(ctx); err != nil {
			t.Fatal(err)
		}
		if f.Size() != int64(len(data)) {
			t.Fatalf("size %d", f.Size())
		}
	})
}

func TestConformanceOverwriteMiddle(t *testing.T) {
	forAll(t, func(t *testing.T, fs vfs.FS, ctx *sim.Ctx) {
		f, _ := fs.Create(ctx, "/f")
		base := bytes.Repeat([]byte{0xAA}, 32<<10)
		f.WriteAt(ctx, base, 0)
		patch := bytes.Repeat([]byte{0xBB}, 3000)
		f.WriteAt(ctx, patch, 5123)
		want := append([]byte{}, base...)
		copy(want[5123:], patch)
		got := make([]byte, len(base))
		f.ReadAt(ctx, got, 0)
		if !bytes.Equal(got, want) {
			t.Fatal("overwrite corrupted content")
		}
	})
}

func TestConformanceAppendStream(t *testing.T) {
	forAll(t, func(t *testing.T, fs vfs.FS, ctx *sim.Ctx) {
		f, _ := fs.Create(ctx, "/log")
		var want []byte
		for i := 0; i < 100; i++ {
			rec := bytes.Repeat([]byte{byte(i)}, 777)
			if _, err := f.Append(ctx, rec); err != nil {
				t.Fatal(err)
			}
			want = append(want, rec...)
		}
		got := make([]byte, len(want))
		if n, _ := f.ReadAt(ctx, got, 0); n != len(want) {
			t.Fatalf("short read %d", n)
		}
		if !bytes.Equal(got, want) {
			t.Fatal("append stream mismatch")
		}
	})
}

func TestConformanceNamespace(t *testing.T) {
	forAll(t, func(t *testing.T, fs vfs.FS, ctx *sim.Ctx) {
		if err := fs.Mkdir(ctx, "/a"); err != nil {
			t.Fatal(err)
		}
		if err := fs.Mkdir(ctx, "/a/b"); err != nil {
			t.Fatal(err)
		}
		if _, err := fs.Create(ctx, "/a/b/c"); err != nil {
			t.Fatal(err)
		}
		if err := fs.Rename(ctx, "/a/b/c", "/a/c2"); err != nil {
			t.Fatal(err)
		}
		if _, err := fs.Stat(ctx, "/a/b/c"); err != vfs.ErrNotExist {
			t.Fatalf("stat moved: %v", err)
		}
		if err := fs.Rmdir(ctx, "/a/b"); err != nil {
			t.Fatal(err)
		}
		if err := fs.Unlink(ctx, "/a/c2"); err != nil {
			t.Fatal(err)
		}
		if err := fs.Rmdir(ctx, "/a"); err != nil {
			t.Fatal(err)
		}
		ents, _ := fs.ReadDir(ctx, "/")
		if len(ents) != 0 {
			t.Fatalf("root not empty: %v", ents)
		}
	})
}

func TestConformanceErrors(t *testing.T) {
	forAll(t, func(t *testing.T, fs vfs.FS, ctx *sim.Ctx) {
		if _, err := fs.Open(ctx, "/nope"); err != vfs.ErrNotExist {
			t.Fatalf("open missing: %v", err)
		}
		if err := fs.Unlink(ctx, "/nope"); err != vfs.ErrNotExist {
			t.Fatalf("unlink missing: %v", err)
		}
		fs.Mkdir(ctx, "/d")
		if _, err := fs.Open(ctx, "/d"); err != vfs.ErrIsDir {
			t.Fatalf("open dir: %v", err)
		}
		if err := fs.Unlink(ctx, "/d"); err != vfs.ErrIsDir {
			t.Fatalf("unlink dir: %v", err)
		}
		fs.Create(ctx, "/f")
		if err := fs.Rmdir(ctx, "/f"); err != vfs.ErrNotDir {
			t.Fatalf("rmdir file: %v", err)
		}
		if _, err := fs.Create(ctx, "/f/x"); err != vfs.ErrNotDir {
			t.Fatalf("create under file: %v", err)
		}
	})
}

func TestConformanceSpaceAccounting(t *testing.T) {
	forAll(t, func(t *testing.T, fs vfs.FS, ctx *sim.Ctx) {
		st0 := fs.StatFS(ctx)
		if st0.FreeBlocks <= 0 || st0.TotalBlocks <= 0 {
			t.Fatalf("bad statfs: %+v", st0)
		}
		f, _ := fs.Create(ctx, "/big")
		if _, err := f.WriteAt(ctx, make([]byte, 16<<20), 0); err != nil {
			t.Fatal(err)
		}
		st1 := fs.StatFS(ctx)
		if st0.FreeBlocks-st1.FreeBlocks < (16<<20)/alloc.BlockSize {
			t.Fatalf("allocation unaccounted: %d -> %d", st0.FreeBlocks, st1.FreeBlocks)
		}
		if err := fs.Unlink(ctx, "/big"); err != nil {
			t.Fatal(err)
		}
		st2 := fs.StatFS(ctx)
		if st2.FreeBlocks < st1.FreeBlocks {
			t.Fatal("unlink did not release space")
		}
	})
}

func TestConformanceMmapRoundTrip(t *testing.T) {
	forAll(t, func(t *testing.T, fs vfs.FS, ctx *sim.Ctx) {
		f, _ := fs.Create(ctx, "/m")
		if err := f.Fallocate(ctx, 0, 4<<20); err != nil {
			t.Fatal(err)
		}
		m, err := f.Mmap(ctx, 4<<20)
		if err != nil {
			t.Fatal(err)
		}
		data := []byte("mapped payload")
		if err := m.Write(ctx, data, 123456); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, len(data))
		if err := m.Read(ctx, got, 123456); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, data) {
			t.Fatal("mmap round trip failed")
		}
		// Visible through the syscall path too.
		got2 := make([]byte, len(data))
		if _, err := f.ReadAt(ctx, got2, 123456); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got2, data) {
			t.Fatal("mmap write invisible to read()")
		}
	})
}

func TestConformanceTruncate(t *testing.T) {
	forAll(t, func(t *testing.T, fs vfs.FS, ctx *sim.Ctx) {
		f, _ := fs.Create(ctx, "/t")
		f.WriteAt(ctx, bytes.Repeat([]byte{1}, 64<<10), 0)
		if err := f.Truncate(ctx, 1000); err != nil {
			t.Fatal(err)
		}
		if f.Size() != 1000 {
			t.Fatalf("size %d", f.Size())
		}
		if err := f.Truncate(ctx, 1<<20); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 10)
		f.ReadAt(ctx, buf, 500000)
		for _, b := range buf {
			if b != 0 {
				t.Fatal("grown region not zero")
			}
		}
	})
}

func TestConformanceVirtualTimeAdvances(t *testing.T) {
	forAll(t, func(t *testing.T, fs vfs.FS, ctx *sim.Ctx) {
		t0 := ctx.Now()
		f, _ := fs.Create(ctx, "/x")
		f.WriteAt(ctx, make([]byte, 4096), 0)
		f.Fsync(ctx)
		if ctx.Now() <= t0 {
			t.Fatal("operations consumed no virtual time")
		}
		if ctx.Counters.Syscalls < 3 {
			t.Fatalf("syscalls = %d", ctx.Counters.Syscalls)
		}
	})
}

// TestHugepageBehaviourDiffers verifies the paper's clean-FS hugepage
// landscape: WineFS, ext4-DAX and NOVA can map a fresh large file with
// hugepages; xfs-DAX and PMFS cannot even when clean (footnote 1).
func TestHugepageBehaviourDiffers(t *testing.T) {
	expectHuge := map[string]bool{
		"WineFS": true, "WineFS-relaxed": true, "ext4-DAX": true,
		"NOVA": true, "NOVA-relaxed": true, "SplitFS": true,
		"xfs-DAX": false, "PMFS": false, "Strata": false,
	}
	for _, m := range All(4) {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			ctx := sim.NewCtx(1, 0)
			dev := pmem.New(256 << 20)
			fs, err := m.Make(ctx, dev)
			if err != nil {
				t.Fatal(err)
			}
			f, _ := fs.Create(ctx, "/big")
			if err := f.Fallocate(ctx, 0, 8<<20); err != nil {
				t.Fatal(err)
			}
			mp, err := f.Mmap(ctx, 8<<20)
			if err != nil {
				t.Fatal(err)
			}
			ctx.Reset()
			if err := mp.Touch(ctx, 0, 8<<20, true); err != nil {
				t.Fatal(err)
			}
			gotHuge := ctx.Counters.HugeFaults > 0 && ctx.Counters.PageFaults == 0
			if gotHuge != expectHuge[m.Name] {
				t.Fatalf("huge=%v (hugeFaults=%d baseFaults=%d), expected huge=%v",
					gotHuge, ctx.Counters.HugeFaults, ctx.Counters.PageFaults, expectHuge[m.Name])
			}
		})
	}
}

// TestChurnConsistency drives create/write/delete churn and verifies
// content integrity and space accounting on every FS.
func TestChurnConsistency(t *testing.T) {
	forAll(t, func(t *testing.T, fs vfs.FS, ctx *sim.Ctx) {
		rng := sim.NewRand(7)
		live := map[string][]byte{}
		for i := 0; i < 300; i++ {
			switch {
			case len(live) < 5 || rng.Intn(3) > 0:
				name := fmt.Sprintf("/c%d", i)
				size := 1 + rng.Intn(100<<10)
				data := make([]byte, size)
				for j := range data {
					data[j] = byte(rng.Intn(256))
				}
				f, err := fs.Create(ctx, name)
				if err != nil {
					t.Fatal(err)
				}
				if _, err := f.WriteAt(ctx, data, 0); err != nil {
					t.Fatal(err)
				}
				live[name] = data
			default:
				for name := range live {
					if err := fs.Unlink(ctx, name); err != nil {
						t.Fatal(err)
					}
					delete(live, name)
					break
				}
			}
		}
		for name, want := range live {
			f, err := fs.Open(ctx, name)
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			got := make([]byte, len(want))
			if n, _ := f.ReadAt(ctx, got, 0); n != len(want) {
				t.Fatalf("%s short read", name)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("%s content mismatch", name)
			}
		}
	})
}

// TestConformanceTruncateGrowZeroes is the regression for a bug the
// extent-map property test found: shrink-truncate to a mid-block offset,
// then write far past EOF — the bytes between the two must read as zero,
// not as the stale tail of the last kept block.
func TestConformanceTruncateGrowZeroes(t *testing.T) {
	forAll(t, func(t *testing.T, fs vfs.FS, ctx *sim.Ctx) {
		f, _ := fs.Create(ctx, "/t")
		if _, err := f.WriteAt(ctx, bytes.Repeat([]byte{0xAB}, 22914), 394252); err != nil {
			t.Fatal(err)
		}
		if err := f.Truncate(ctx, 409482); err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt(ctx, bytes.Repeat([]byte{0xCD}, 1000), 900000); err != nil {
			t.Fatal(err)
		}
		buf := make([]byte, 4096)
		if _, err := f.ReadAt(ctx, buf, 409482-10); err != nil {
			t.Fatal(err)
		}
		for i := 10; i < len(buf); i++ {
			if buf[i] != 0 {
				t.Fatalf("stale byte %x at EOF+%d after truncate+grow", buf[i], i-10)
			}
		}
	})
}
