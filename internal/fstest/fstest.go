// Package fstest provides a conformance suite run against every file
// system in the repository through the vfs.FS interface, plus helpers the
// experiments reuse to construct any FS by name.
package fstest

import (
	"repro/internal/ext4dax"
	"repro/internal/nova"
	"repro/internal/pmem"
	"repro/internal/pmfs"
	"repro/internal/sim"
	"repro/internal/splitfs"
	"repro/internal/strata"
	"repro/internal/vfs"
	"repro/internal/winefs"
	"repro/internal/xfsdax"
)

// Maker constructs a freshly formatted file system on dev.
type Maker struct {
	Name string
	Make func(ctx *sim.Ctx, dev *pmem.Device) (vfs.FS, error)
}

// All returns makers for every file system, with `cpus` per-CPU structures
// where the design has them.
func All(cpus int) []Maker {
	return []Maker{
		{"WineFS", func(ctx *sim.Ctx, dev *pmem.Device) (vfs.FS, error) {
			return winefs.Mkfs(ctx, dev, winefs.Options{CPUs: cpus, Mode: vfs.Strict})
		}},
		{"WineFS-relaxed", func(ctx *sim.Ctx, dev *pmem.Device) (vfs.FS, error) {
			return winefs.Mkfs(ctx, dev, winefs.Options{CPUs: cpus, Mode: vfs.Relaxed})
		}},
		{"ext4-DAX", func(ctx *sim.Ctx, dev *pmem.Device) (vfs.FS, error) {
			return ext4dax.New(dev), nil
		}},
		{"xfs-DAX", func(ctx *sim.Ctx, dev *pmem.Device) (vfs.FS, error) {
			return xfsdax.New(dev), nil
		}},
		{"PMFS", func(ctx *sim.Ctx, dev *pmem.Device) (vfs.FS, error) {
			return pmfs.New(dev), nil
		}},
		{"NOVA", func(ctx *sim.Ctx, dev *pmem.Device) (vfs.FS, error) {
			return nova.New(dev, nova.Options{CPUs: cpus}), nil
		}},
		{"NOVA-relaxed", func(ctx *sim.Ctx, dev *pmem.Device) (vfs.FS, error) {
			return nova.New(dev, nova.Options{CPUs: cpus, Relaxed: true}), nil
		}},
		{"SplitFS", func(ctx *sim.Ctx, dev *pmem.Device) (vfs.FS, error) {
			return splitfs.New(dev), nil
		}},
		{"Strata", func(ctx *sim.Ctx, dev *pmem.Device) (vfs.FS, error) {
			return strata.New(dev), nil
		}},
	}
}

// ByName returns the maker with the given name, or false.
func ByName(name string, cpus int) (Maker, bool) {
	for _, m := range All(cpus) {
		if m.Name == name {
			return m, true
		}
	}
	return Maker{}, false
}
