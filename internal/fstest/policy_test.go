package fstest

// Policy tests: verify that each baseline file system exhibits the
// specific behaviour the paper attributes to it, beyond the generic
// conformance suite.

import (
	"testing"

	"repro/internal/ext4dax"
	"repro/internal/mmu"
	"repro/internal/nova"
	"repro/internal/pmem"
	"repro/internal/pmfs"
	"repro/internal/sim"
	"repro/internal/splitfs"
	"repro/internal/strata"
	"repro/internal/vfs"
)

func TestExt4GoalExtension(t *testing.T) {
	// Contiguity first: sequential appends to one file stay physically
	// contiguous (one extent), the locality preference that costs ext4 its
	// alignment under aging.
	ctx := sim.NewCtx(1, 0)
	fs := ext4dax.New(pmem.New(256 << 20))
	f, _ := fs.Create(ctx, "/grow")
	for i := 0; i < 64; i++ {
		if _, err := f.Append(ctx, make([]byte, 64<<10)); err != nil {
			t.Fatal(err)
		}
	}
	if exts := f.Extents(); len(exts) != 1 {
		t.Fatalf("goal extension broken: %d extents", len(exts))
	}
}

func TestExt4ZeroOnFaultCost(t *testing.T) {
	// Fallocate is cheap; the zeroing bill arrives at fault time (§5.4's
	// PmemKV analysis).
	ctx := sim.NewCtx(1, 0)
	fs := ext4dax.New(pmem.New(256 << 20))
	f, _ := fs.Create(ctx, "/pool")
	if err := f.Fallocate(ctx, 0, 8<<20); err != nil {
		t.Fatal(err)
	}
	allocZero := ctx.Counters.ZeroNS
	m, _ := f.Mmap(ctx, 8<<20)
	bench := sim.NewCtx(2, 0)
	bench.AdvanceTo(ctx.Now())
	if err := m.Touch(bench, 0, 8<<20, true); err != nil {
		t.Fatal(err)
	}
	if allocZero != 0 {
		t.Fatalf("ext4 zeroed at fallocate: %d", allocZero)
	}
	if bench.Counters.ZeroNS == 0 {
		t.Fatal("ext4 did not zero at fault time")
	}

	// NOVA is the opposite: zero at fallocate, cheap faults.
	nctx := sim.NewCtx(3, 0)
	nfs := nova.New(pmem.New(256<<20), nova.Options{CPUs: 2})
	nf, _ := nfs.Create(nctx, "/pool")
	if err := nf.Fallocate(nctx, 0, 8<<20); err != nil {
		t.Fatal(err)
	}
	if nctx.Counters.ZeroNS == 0 {
		t.Fatal("NOVA should zero at fallocate")
	}
	nm, _ := nf.Mmap(nctx, 8<<20)
	nbench := sim.NewCtx(4, 0)
	nbench.AdvanceTo(nctx.Now())
	if err := nm.Touch(nbench, 0, 8<<20, true); err != nil {
		t.Fatal(err)
	}
	if nbench.Counters.ZeroNS != 0 {
		t.Fatal("NOVA should not zero at fault time")
	}
}

func TestNOVAPerInodeLogConsumesSpace(t *testing.T) {
	// Every create allocates a log block from the data area — the
	// fragmentation driver §3.4 calls out.
	ctx := sim.NewCtx(1, 0)
	fs := nova.New(pmem.New(256<<20), nova.Options{CPUs: 2})
	before := fs.StatFS(ctx).FreeBlocks
	const n = 100
	for i := 0; i < n; i++ {
		if _, err := fs.Create(ctx, "/f"+itoa(i)); err != nil {
			t.Fatal(err)
		}
	}
	used := before - fs.StatFS(ctx).FreeBlocks
	if used < n {
		t.Fatalf("creates used %d blocks, want ≥%d (per-inode logs)", used, n)
	}
	// Deleting returns the files' log blocks; the root directory's own
	// log legitimately grew with the 200 namespace operations, so allow a
	// small residue for it.
	for i := 0; i < n; i++ {
		if err := fs.Unlink(ctx, "/f"+itoa(i)); err != nil {
			t.Fatal(err)
		}
	}
	if got := fs.StatFS(ctx).FreeBlocks; got < before-16 {
		t.Fatalf("log blocks leaked: %d vs %d", got, before)
	}
}

func TestNOVAOverwriteCoWMovesBlocks(t *testing.T) {
	ctx := sim.NewCtx(1, 0)
	fs := nova.New(pmem.New(256<<20), nova.Options{CPUs: 2})
	f, _ := fs.Create(ctx, "/x")
	f.WriteAt(ctx, make([]byte, 64<<10), 0)
	before := f.Extents()
	if _, err := f.WriteAt(ctx, make([]byte, 4096), 8192); err != nil {
		t.Fatal(err)
	}
	after := f.Extents()
	phys := func(exts []mmu.Extent, off int64) int64 {
		p, _ := mmu.PhysAt(exts, off)
		return p
	}
	if phys(before, 8192) == phys(after, 8192) {
		t.Fatal("strict NOVA overwrite did not copy-on-write")
	}
	if ctx.Counters.CoWCopies == 0 {
		t.Fatal("no CoW recorded")
	}
}

func TestPMFSLinearDirectoryScans(t *testing.T) {
	// PMFS lookup cost grows with directory size (no DRAM index), the
	// varmail weakness §5.5 describes.
	cost := func(entries int) int64 {
		ctx := sim.NewCtx(1, 0)
		fs := pmfs.New(pmem.New(256 << 20))
		for i := 0; i < entries; i++ {
			fs.Create(ctx, "/f"+itoa(i))
		}
		probe := sim.NewCtx(2, 0)
		probe.AdvanceTo(ctx.Now())
		t0 := probe.Now()
		for i := 0; i < 50; i++ {
			fs.Stat(probe, "/f0")
		}
		return probe.Now() - t0
	}
	small, large := cost(10), cost(1000)
	if large < small*5 {
		t.Fatalf("PMFS lookups should scale with dir size: %d vs %d", small, large)
	}

	// ext4's hashed directories stay flat.
	ecost := func(entries int) int64 {
		ctx := sim.NewCtx(1, 0)
		fs := ext4dax.New(pmem.New(256 << 20))
		for i := 0; i < entries; i++ {
			fs.Create(ctx, "/f"+itoa(i))
		}
		probe := sim.NewCtx(2, 0)
		probe.AdvanceTo(ctx.Now())
		t0 := probe.Now()
		for i := 0; i < 50; i++ {
			fs.Stat(probe, "/f0")
		}
		return probe.Now() - t0
	}
	esmall, elarge := ecost(10), ecost(1000)
	if elarge > esmall*2 {
		t.Fatalf("ext4 lookups should not scale with dir size: %d vs %d", esmall, elarge)
	}
}

func TestSplitFSCheapAppendsExpensiveNamespace(t *testing.T) {
	// Appends bypass the journal (staged); creates pay JBD2 like ext4.
	ctx := sim.NewCtx(1, 0)
	sfs := splitfs.New(pmem.New(256 << 20))
	efs := ext4dax.New(pmem.New(256 << 20))

	appendCost := func(fs vfs.FS, id int) int64 {
		c := sim.NewCtx(10+id, 0)
		f, _ := fs.Create(c, "/a")
		t0 := c.Now()
		for i := 0; i < 200; i++ {
			f.Append(c, make([]byte, 1024))
		}
		return c.Now() - t0
	}
	if sa, ea := appendCost(sfs, 1), appendCost(efs, 2); sa >= ea {
		t.Fatalf("SplitFS appends not cheaper: splitfs=%d ext4=%d", sa, ea)
	}
	_ = ctx
}

func TestStrataDigestionDoublesWriteTraffic(t *testing.T) {
	ctx := sim.NewCtx(1, 0)
	fs := strata.New(pmem.New(256 << 20))
	f, _ := fs.Create(ctx, "/x")
	n := int64(1 << 20)
	before := ctx.Counters.PMWriteBytes
	if _, err := f.WriteAt(ctx, make([]byte, n), 0); err != nil {
		t.Fatal(err)
	}
	written := ctx.Counters.PMWriteBytes - before
	// Log write + digestion copy ≈ 2× the payload.
	if written < 2*n {
		t.Fatalf("strata wrote %d bytes for a %d-byte write, want ≥2x", written, n)
	}
}

func TestFsbaseUnwrittenSplitOnFault(t *testing.T) {
	// Faulting one page of a fallocated ext4 file converts exactly that
	// page; a syscall read of a neighbouring unwritten page still sees
	// zeros even after mmap writes elsewhere.
	ctx := sim.NewCtx(1, 0)
	fs := ext4dax.New(pmem.New(256 << 20))
	f, _ := fs.Create(ctx, "/u")
	if err := f.Fallocate(ctx, 0, 1<<20); err != nil {
		t.Fatal(err)
	}
	m, _ := f.Mmap(ctx, 1<<20)
	if err := m.Write(ctx, []byte{0xAA}, 8192); err != nil {
		t.Fatal(err)
	}
	var b [1]byte
	if _, err := f.ReadAt(ctx, b[:], 8192); err != nil || b[0] != 0xAA {
		t.Fatalf("faulted page lost its data: %v %x", err, b[0])
	}
	if _, err := f.ReadAt(ctx, b[:], 64<<10); err != nil || b[0] != 0 {
		t.Fatalf("unwritten page not zero: %v %x", err, b[0])
	}
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var b [12]byte
	i := len(b)
	for v > 0 {
		i--
		b[i] = byte('0' + v%10)
		v /= 10
	}
	return string(b[i:])
}
