// Package pmfs models PMFS, the code base WineFS was built from: a single
// fine-grained undo journal (synchronous, short holds — scales decently,
// §5.6 — but shared by all CPUs), linear directory scans ("poor metadata
// structures, directory traversals, and inode free-lists limit PMFS's
// performance on metadata-heavy workloads like varmail"), an
// alignment-blind allocator (it cannot get hugepages even when clean,
// footnote 1), and relaxed guarantees.
package pmfs

import (
	"repro/internal/alloc"
	"repro/internal/fsbase"
	"repro/internal/pmem"
	"repro/internal/sim"
	"repro/internal/vfs"
)

const dataStartBlk = 19

// New mounts a fresh PMFS instance over dev.
func New(dev *pmem.Device) *fsbase.FS {
	total := dev.Size()/fsbase.BlockSize - dataStartBlk
	h := &hooks{
		model:   dev.Model(),
		pool:    fsbase.NewLockedPool(dataStartBlk, total),
		journal: fsbase.NewSingleJournal(dev.Model()),
	}
	return fsbase.New(dev, h)
}

type hooks struct {
	model   *pmem.CostModel
	pool    *fsbase.LockedPool
	journal *fsbase.SingleJournal
}

func (h *hooks) Name() string                { return "PMFS" }
func (h *hooks) Mode() vfs.ConsistencyMode   { return vfs.Relaxed }
func (h *hooks) TotalBlocks() int64          { return h.pool.Total() }
func (h *hooks) FreeBlocks() int64           { return h.pool.Free() }
func (h *hooks) FreeExtents() []alloc.Extent { return h.pool.Extents() }

func (h *hooks) Alloc(ctx *sim.Ctx, blocks int64, hint fsbase.AllocHint) ([]alloc.Extent, error) {
	ex, ok := h.pool.Take(ctx, blocks, fsbase.Strategy{Goal: hint.Goal, NextFit: true})
	if !ok {
		return nil, vfs.ErrNoSpace
	}
	return ex, nil
}

func (h *hooks) Free(ctx *sim.Ctx, ex []alloc.Extent) { h.pool.Release(ctx, ex) }

func (h *hooks) MetaOp(ctx *sim.Ctx, n *fsbase.Node, entries int, kind fsbase.MetaKind) {
	h.journal.Op(ctx, entries)
}

// pmfsDirentScanNS is the per-entry cost of PMFS's sequential directory
// scan (no DRAM index).
const pmfsDirentScanNS = 60

func (h *hooks) DirLookup(ctx *sim.Ctx, entries int) {
	cost := int64(entries) * pmfsDirentScanNS / 2 // expected half-scan
	if cost < 100 {
		cost = 100
	}
	ctx.Advance(cost)
}

func (h *hooks) Overwrite(ctx *sim.Ctx, n *fsbase.Node, off, length int64) fsbase.OverwriteAction {
	return fsbase.InPlace
}

func (h *hooks) DataWrite(ctx *sim.Ctx, n *fsbase.Node, length int64) {}

func (h *hooks) Fsync(ctx *sim.Ctx, n *fsbase.Node, dirty int64) {
	// Metadata is already durable; only residual data lines need flushing.
	ctx.Advance((dirty + 63) / 64 * h.model.FlushLat / 8)
	ctx.Advance(h.model.FenceLat)
}

func (h *hooks) ZeroOnFault() bool                     { return false }
func (h *hooks) OnCreate(ctx *sim.Ctx, n *fsbase.Node) {}
func (h *hooks) OnDelete(ctx *sim.Ctx, n *fsbase.Node) {}
