// Package rocksdb implements a compact LSM-tree key-value store in the
// style of RocksDB configured for PM as the paper evaluates it (§5.4):
// memory-mapped reads and writes (mmap_reads/mmap_writes), a write-ahead
// log, an in-memory memtable flushed to sorted, memory-mapped table files,
// and level compaction. Every table file is created with fallocate and
// accessed exclusively through its mapping, so lookups and compactions
// exercise the page-fault and TLB behaviour Figure 7(a) and Table 2
// measure under YCSB.
package rocksdb

import (
	"encoding/binary"
	"fmt"
	"sort"

	"repro/internal/mmu"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// Options tune the store.
type Options struct {
	Dir string
	// MemtableBytes is the flush threshold (default 4MiB).
	MemtableBytes int64
	// MaxTables triggers compaction when level-0 holds this many tables
	// (default 6).
	MaxTables int
}

// DB is an open store.
type DB struct {
	fs   vfs.FS
	opts Options

	wal     vfs.File
	walSize int64

	mem      map[uint64][]byte
	memBytes int64

	tables []*table // newest first
	nextID int
}

type table struct {
	name  string
	file  vfs.File
	m     *mmu.Mapping
	keys  []uint64 // sorted
	offs  []int64
	lens  []int32
	bytes int64
}

// Open creates a fresh store.
func Open(ctx *sim.Ctx, fs vfs.FS, opts Options) (*DB, error) {
	if opts.Dir == "" {
		opts.Dir = "/rocksdb"
	}
	if opts.MemtableBytes == 0 {
		opts.MemtableBytes = 4 << 20
	}
	if opts.MaxTables == 0 {
		opts.MaxTables = 6
	}
	if err := fs.Mkdir(ctx, opts.Dir); err != nil && err != vfs.ErrExist {
		return nil, err
	}
	wal, err := fs.Create(ctx, opts.Dir+"/wal")
	if err != nil {
		return nil, err
	}
	return &DB{fs: fs, opts: opts, wal: wal, mem: make(map[uint64][]byte)}, nil
}

// Put inserts key → val: WAL append, memtable insert, flush when full.
func (db *DB) Put(ctx *sim.Ctx, key uint64, val []byte) error {
	var hdr [12]byte
	binary.LittleEndian.PutUint64(hdr[0:], key)
	binary.LittleEndian.PutUint32(hdr[8:], uint32(len(val)))
	if _, err := db.wal.Append(ctx, hdr[:]); err != nil {
		return err
	}
	if _, err := db.wal.Append(ctx, val); err != nil {
		return err
	}
	db.walSize += int64(len(val)) + 12
	cp := make([]byte, len(val))
	copy(cp, val)
	db.mem[key] = cp
	db.memBytes += int64(len(val)) + 16
	if db.memBytes >= db.opts.MemtableBytes {
		return db.flush(ctx)
	}
	return nil
}

// Get looks key up: memtable first, then tables newest-to-oldest with
// binary search over the mapped index.
func (db *DB) Get(ctx *sim.Ctx, key uint64, buf []byte) (int, error) {
	if v, ok := db.mem[key]; ok {
		n := copy(buf, v)
		return n, nil
	}
	for _, t := range db.tables {
		i := sort.Search(len(t.keys), func(i int) bool { return t.keys[i] >= key })
		if i < len(t.keys) && t.keys[i] == key {
			n := int(t.lens[i])
			if n > len(buf) {
				n = len(buf)
			}
			if err := t.m.Read(ctx, buf[:n], t.offs[i]); err != nil {
				return 0, err
			}
			return n, nil
		}
	}
	return 0, vfs.ErrNotExist
}

// flush writes the memtable to a new sorted table file via its mapping.
func (db *DB) flush(ctx *sim.Ctx) error {
	if len(db.mem) == 0 {
		return nil
	}
	keys := make([]uint64, 0, len(db.mem))
	for k := range db.mem {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	var size int64
	for _, k := range keys {
		size += int64(len(db.mem[k])) + 16
	}
	size = (size + mmu.HugePage - 1) / mmu.HugePage * mmu.HugePage

	name := fmt.Sprintf("%s/table%06d", db.opts.Dir, db.nextID)
	db.nextID++
	f, err := db.fs.Create(ctx, name)
	if err != nil {
		return err
	}
	// Tables are preallocated (large request → aligned extents on a
	// hugepage-aware FS) and written through the mapping.
	if err := f.Fallocate(ctx, 0, size); err != nil {
		return err
	}
	m, err := f.Mmap(ctx, size)
	if err != nil {
		return err
	}
	t := &table{name: name, file: f, m: m, bytes: size}
	var off int64
	for _, k := range keys {
		v := db.mem[k]
		var hdr [16]byte
		binary.LittleEndian.PutUint64(hdr[0:], k)
		binary.LittleEndian.PutUint64(hdr[8:], uint64(len(v)))
		if err := m.Write(ctx, hdr[:], off); err != nil {
			return err
		}
		if err := m.Write(ctx, v, off+16); err != nil {
			return err
		}
		t.keys = append(t.keys, k)
		t.offs = append(t.offs, off+16)
		t.lens = append(t.lens, int32(len(v)))
		off += int64(len(v)) + 16
	}
	db.tables = append([]*table{t}, db.tables...)
	db.mem = make(map[uint64][]byte)
	db.memBytes = 0
	// Truncate the WAL (its entries are now in a durable table).
	if err := db.wal.Truncate(ctx, 0); err != nil {
		return err
	}
	db.walSize = 0
	if len(db.tables) > db.opts.MaxTables {
		return db.compact(ctx)
	}
	return nil
}

// compact merges all tables into one, reading through the old mappings and
// writing through the new one, then deletes the old files.
func (db *DB) compact(ctx *sim.Ctx) error {
	merged := make(map[uint64]ref)
	for gen, t := range db.tables { // newest first: keep first occurrence
		for i, k := range t.keys {
			if _, ok := merged[k]; !ok {
				merged[k] = ref{gen, i}
			}
		}
	}
	keys := make([]uint64, 0, len(merged))
	for k := range merged {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	var size int64
	for _, k := range keys {
		size += int64(db.tables[merged[k].gen].lens[merged[k].idx]) + 16
	}
	size = (size + mmu.HugePage - 1) / mmu.HugePage * mmu.HugePage
	name := fmt.Sprintf("%s/table%06d", db.opts.Dir, db.nextID)
	db.nextID++
	f, err := db.fs.Create(ctx, name)
	if err != nil {
		return err
	}
	if err := f.Fallocate(ctx, 0, size); err != nil {
		return err
	}
	m, err := f.Mmap(ctx, size)
	if err != nil {
		return err
	}
	nt := &table{name: name, file: f, m: m, bytes: size}
	var off int64
	buf := make([]byte, 64<<10)
	for _, k := range keys {
		r := merged[k]
		ot := db.tables[r.gen]
		l := int(ot.lens[r.idx])
		if l > len(buf) {
			buf = make([]byte, l)
		}
		if err := ot.m.Read(ctx, buf[:l], ot.offs[r.idx]); err != nil {
			return err
		}
		var hdr [16]byte
		binary.LittleEndian.PutUint64(hdr[0:], k)
		binary.LittleEndian.PutUint64(hdr[8:], uint64(l))
		if err := m.Write(ctx, hdr[:], off); err != nil {
			return err
		}
		if err := m.Write(ctx, buf[:l], off+16); err != nil {
			return err
		}
		nt.keys = append(nt.keys, k)
		nt.offs = append(nt.offs, off+16)
		nt.lens = append(nt.lens, int32(l))
		off += int64(l) + 16
	}
	// Delete the old table files.
	old := db.tables
	db.tables = []*table{nt}
	for _, ot := range old {
		if err := db.fs.Unlink(ctx, ot.name); err != nil {
			return err
		}
	}
	return nil
}

type ref struct{ gen, idx int }

// Flush forces the memtable out (used between load and run phases).
func (db *DB) Flush(ctx *sim.Ctx) error { return db.flush(ctx) }

// Tables reports the live table count.
func (db *DB) Tables() int { return len(db.tables) }
