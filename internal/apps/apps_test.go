// Package apps_test exercises the application analogues end-to-end on
// WineFS and verifies the behaviours the paper attributes to each.
package apps_test

import (
	"bytes"
	"testing"

	"repro/internal/apps/lmdb"
	"repro/internal/apps/part"
	"repro/internal/apps/pmemkv"
	"repro/internal/apps/rocksdb"
	"repro/internal/ext4dax"
	"repro/internal/pmem"
	"repro/internal/sim"
	"repro/internal/vfs"
	"repro/internal/winefs"
)

func wineFS(t *testing.T, size int64) (vfs.FS, *sim.Ctx) {
	t.Helper()
	ctx := sim.NewCtx(1, 0)
	dev := pmem.New(size)
	fs, err := winefs.Mkfs(ctx, dev, winefs.Options{CPUs: 4})
	if err != nil {
		t.Fatal(err)
	}
	return fs, ctx
}

func TestLMDBPutGet(t *testing.T) {
	fs, ctx := wineFS(t, 512<<20)
	db, err := lmdb.Open(ctx, fs, lmdb.Options{MapSize: 128 << 20})
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	val := make([]byte, 1024)
	for i := uint64(0); i < n; i++ {
		for j := range val {
			val[j] = byte(i)
		}
		if err := db.Put(ctx, i, val); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	buf := make([]byte, 1024)
	for _, k := range []uint64{0, 1, n / 2, n - 1} {
		got, err := db.Get(ctx, k, buf)
		if err != nil || got != 1024 {
			t.Fatalf("get %d: n=%d err=%v", k, got, err)
		}
		if buf[0] != byte(k) || buf[1023] != byte(k) {
			t.Fatalf("get %d: wrong content %d", k, buf[0])
		}
	}
	if _, err := db.Get(ctx, 999999, buf); err != vfs.ErrNotExist {
		t.Fatalf("missing key: %v", err)
	}
}

func TestLMDBBatchedSequential(t *testing.T) {
	// fillseqbatch: batches of sequential keys — LMDB's best case.
	fs, ctx := wineFS(t, 512<<20)
	db, _ := lmdb.Open(ctx, fs, lmdb.Options{MapSize: 128 << 20})
	var keys []uint64
	var vals [][]byte
	k := uint64(0)
	for b := 0; b < 20; b++ {
		keys = keys[:0]
		vals = vals[:0]
		for i := 0; i < 100; i++ {
			keys = append(keys, k)
			vals = append(vals, bytes.Repeat([]byte{byte(k % 251)}, 1000))
			k++
		}
		if err := db.PutBatch(ctx, keys, vals); err != nil {
			t.Fatal(err)
		}
	}
	buf := make([]byte, 1000)
	n, err := db.Get(ctx, 1234, buf)
	if err != nil || n != 1000 || buf[0] != byte(1234%251) {
		t.Fatalf("get after batches: %d %v", n, err)
	}
}

func TestLMDBSparseFaultBehaviour(t *testing.T) {
	// The paper's LMDB claim: ftruncate-based growth means page faults do
	// allocation. On WineFS the faults should be served with hugepages.
	fs, ctx := wineFS(t, 512<<20)
	ctx.Reset()
	db, _ := lmdb.Open(ctx, fs, lmdb.Options{MapSize: 64 << 20})
	val := make([]byte, 4096)
	for i := uint64(0); i < 1000; i++ {
		if err := db.Put(ctx, i, val); err != nil {
			t.Fatal(err)
		}
	}
	if ctx.Counters.HugeFaults == 0 {
		t.Fatal("WineFS should serve LMDB's sparse faults with hugepages")
	}
	if ctx.Counters.PageFaults > ctx.Counters.HugeFaults*16 {
		t.Fatalf("too many base faults: base=%d huge=%d",
			ctx.Counters.PageFaults, ctx.Counters.HugeFaults)
	}
}

func TestPmemKVGrowsPools(t *testing.T) {
	fs, ctx := wineFS(t, 1<<30)
	db, err := pmemkv.Open(ctx, fs, "/pmemkv")
	if err != nil {
		t.Fatal(err)
	}
	val := make([]byte, 4096)
	// Write more than one 128MiB segment's worth.
	n := (pmemkv.SegmentSize / 4096) + 100
	for i := 0; i < n; i++ {
		if err := db.Put(ctx, uint64(i), val); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if db.Segments() < 2 {
		t.Fatalf("pool did not grow: %d segments", db.Segments())
	}
	buf := make([]byte, 4096)
	if got, err := db.Get(ctx, uint64(n-1), buf); err != nil || got != 4096 {
		t.Fatalf("get: %d %v", got, err)
	}
}

func TestRocksDBFlushCompactLookup(t *testing.T) {
	fs, ctx := wineFS(t, 1<<30)
	db, err := rocksdb.Open(ctx, fs, rocksdb.Options{MemtableBytes: 256 << 10, MaxTables: 3})
	if err != nil {
		t.Fatal(err)
	}
	val := make([]byte, 512)
	const n = 5000
	for i := uint64(0); i < n; i++ {
		for j := range val {
			val[j] = byte(i % 251)
		}
		if err := db.Put(ctx, i, val); err != nil {
			t.Fatalf("put %d: %v", i, err)
		}
	}
	if err := db.Flush(ctx); err != nil {
		t.Fatal(err)
	}
	if db.Tables() > 4 {
		t.Fatalf("compaction not bounding tables: %d", db.Tables())
	}
	buf := make([]byte, 512)
	for _, k := range []uint64{0, 17, n / 3, n - 1} {
		got, err := db.Get(ctx, k, buf)
		if err != nil || got != 512 {
			t.Fatalf("get %d: %d %v", k, got, err)
		}
		if buf[0] != byte(k%251) {
			t.Fatalf("get %d: content %d", k, buf[0])
		}
	}
	// Overwrites: newest value wins across tables.
	if err := db.Put(ctx, 17, bytes.Repeat([]byte{0xEE}, 512)); err != nil {
		t.Fatal(err)
	}
	db.Flush(ctx)
	db.Get(ctx, 17, buf)
	if buf[0] != 0xEE {
		t.Fatal("overwrite lost")
	}
}

func TestPARTInsertLookup(t *testing.T) {
	fs, ctx := wineFS(t, 1<<30)
	tree, err := part.New(ctx, fs, "/pool", 64<<20)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRand(3)
	keys := map[uint64]uint64{}
	for i := 0; i < 20000; i++ {
		k := rng.Uint64()
		keys[k] = k * 3
		if err := tree.Insert(ctx, k, k*3); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
	}
	for k, want := range keys {
		v, ok, err := tree.Lookup(ctx, k)
		if err != nil || !ok || v != want {
			t.Fatalf("lookup %x: %x %v %v", k, v, ok, err)
		}
	}
	if _, ok, _ := tree.Lookup(ctx, 0xdeadbeefdeadbeef); ok && keys[0xdeadbeefdeadbeef] == 0 {
		t.Fatal("phantom key")
	}
}

func TestPARTDenseKeysGrowNodes(t *testing.T) {
	// Sequential keys share prefixes: forces N4→N16→N48→N256 growth.
	fs, ctx := wineFS(t, 512<<20)
	tree, _ := part.New(ctx, fs, "/pool", 32<<20)
	for i := uint64(0); i < 5000; i++ {
		if err := tree.Insert(ctx, i, i+1); err != nil {
			t.Fatal(err)
		}
	}
	for i := uint64(0); i < 5000; i += 37 {
		v, ok, err := tree.Lookup(ctx, i)
		if err != nil || !ok || v != i+1 {
			t.Fatalf("lookup %d: %d %v %v", i, v, ok, err)
		}
	}
	// Replacement.
	tree.Insert(ctx, 42, 999)
	if v, ok, _ := tree.Lookup(ctx, 42); !ok || v != 999 {
		t.Fatalf("replace: %d %v", v, ok)
	}
}

func TestPARTPrefaultedNoFaultsOnLookup(t *testing.T) {
	fs, ctx := wineFS(t, 512<<20)
	tree, _ := part.New(ctx, fs, "/pool", 32<<20)
	for i := uint64(0); i < 10000; i++ {
		tree.Insert(ctx, i*2654435761, i)
	}
	ctx.Reset()
	for i := uint64(0); i < 1000; i++ {
		tree.Lookup(ctx, i*2654435761)
	}
	if ctx.Counters.TotalFaults() != 0 {
		t.Fatalf("lookups took %d faults on a pre-faulted pool", ctx.Counters.TotalFaults())
	}
}

// TestAppsAcrossFileSystems smoke-tests each app on a second FS to catch
// interface assumptions (ext4-DAX has the most different fault behaviour).
func TestAppsAcrossFileSystems(t *testing.T) {
	ctx := sim.NewCtx(1, 0)
	dev := pmem.New(1 << 30)
	fs := ext4dax.New(dev)

	db, err := lmdb.Open(ctx, fs, lmdb.Options{MapSize: 32 << 20, Path: "/l.mdb"})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Put(ctx, 1, []byte("x")); err != nil {
		t.Fatal(err)
	}

	kv, err := pmemkv.Open(ctx, fs, "/kv")
	if err != nil {
		t.Fatal(err)
	}
	if err := kv.Put(ctx, 1, []byte("y")); err != nil {
		t.Fatal(err)
	}

	rdb, err := rocksdb.Open(ctx, fs, rocksdb.Options{Dir: "/rdb"})
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		if err := rdb.Put(ctx, i, make([]byte, 100)); err != nil {
			t.Fatal(err)
		}
	}

	tr, err := part.New(ctx, fs, "/pool", 16<<20)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 100; i++ {
		if err := tr.Insert(ctx, i, i); err != nil {
			t.Fatal(err)
		}
	}
}
