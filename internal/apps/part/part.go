// Package part implements P-ART, the persistent adaptive radix tree the
// paper uses for its latency-distribution experiment (§5.4, Figure 8).
// Like the original (RECIPE's converted ART), it lives in a PM pool that
// is memory-mapped and pre-faulted at initialisation — "the lookups don't
// suffer from page faults as page-tables are already setup" — so lookup
// latency is governed purely by TLB misses and LLC behaviour, i.e. by
// whether the pool is mapped with hugepages.
//
// Node types follow ART: Node4, Node16, Node48 and Node256, adaptively
// grown. Keys are fixed 8-byte big-endian integers; values are 8-byte
// offsets into the pool's value area. Every node access goes through the
// mapping, touching real simulated cache lines.
package part

import (
	"encoding/binary"
	"errors"

	"repro/internal/sim"
	"repro/internal/vfs"
	"repro/internal/vmm"
)

// Node kinds.
const (
	kindN4 = iota + 1
	kindN16
	kindN48
	kindN256
	kindLeaf
)

// node sizes on PM (bytes).
const (
	sizeN4   = 8 + 4 + 4*8   // header + 4 key bytes + 4 children
	sizeN16  = 8 + 16 + 16*8 // header + 16 key bytes + 16 children
	sizeN48  = 8 + 256 + 48*8
	sizeN256 = 8 + 256*8
	sizeLeaf = 8 + 8 + 8 // header + key + value
)

// ErrFull indicates pool exhaustion.
var ErrFull = errors.New("part: pool full")

// Tree is a P-ART over a memory-mapped pool file.
type Tree struct {
	m    *vmm.Mapping
	size int64
	bump int64
	root int64 // offset of root node, 0 = empty
}

// New creates a pool file of poolSize bytes on fs (via the vmmalloc-style
// pattern: fallocate then mmap), pre-faults it, and returns an empty tree.
func New(ctx *sim.Ctx, fs vfs.FS, path string, poolSize int64) (*Tree, error) {
	f, err := fs.Create(ctx, path)
	if err != nil {
		return nil, err
	}
	if err := f.Fallocate(ctx, 0, poolSize); err != nil {
		return nil, err
	}
	// §5.4: "P-ART ... pre-faults this region during initialization to
	// avoid page faults in the critical path." — Preload prefaults the
	// whole pool at map time; stores flush as they land (the tree's
	// persistence story is clwb-per-store, not batched msync).
	m, err := vmm.Map(ctx, f, poolSize, vmm.Config{
		Mode:        vmm.ModeShared,
		Sync:        vmm.SyncImmediate,
		MapFullFile: true,
		Preload:     true,
	})
	if err != nil {
		return nil, err
	}
	return &Tree{m: m, size: poolSize, bump: 64}, nil
}

// Mapping exposes the pool mapping.
func (t *Tree) Mapping() *vmm.Mapping { return t.m }

func (t *Tree) alloc(n int64) (int64, error) {
	// Cache-line align nodes.
	n = (n + 63) / 64 * 64
	if t.bump+n > t.size {
		return 0, ErrFull
	}
	off := t.bump
	t.bump += n
	return off, nil
}

// header: kind u8 | childCount u8 | pad[6].
func (t *Tree) readHeader(ctx *sim.Ctx, off int64) (kind byte, count int, err error) {
	var h [8]byte
	if err := t.m.Read(ctx, h[:], off); err != nil {
		return 0, 0, err
	}
	return h[0], int(h[1]), nil
}

func (t *Tree) writeHeader(ctx *sim.Ctx, off int64, kind byte, count int) error {
	var h [8]byte
	h[0] = kind
	h[1] = byte(count)
	return t.m.Write(ctx, h[:], off)
}

func (t *Tree) newLeaf(ctx *sim.Ctx, key, val uint64) (int64, error) {
	off, err := t.alloc(sizeLeaf)
	if err != nil {
		return 0, err
	}
	var b [sizeLeaf]byte
	b[0] = kindLeaf
	binary.LittleEndian.PutUint64(b[8:], key)
	binary.LittleEndian.PutUint64(b[16:], val)
	return off, t.m.Write(ctx, b[:], off)
}

func (t *Tree) leafKV(ctx *sim.Ctx, off int64) (uint64, uint64, error) {
	var b [16]byte
	if err := t.m.Read(ctx, b[:], off+8); err != nil {
		return 0, 0, err
	}
	return binary.LittleEndian.Uint64(b[0:]), binary.LittleEndian.Uint64(b[8:]), nil
}

// keyByte extracts radix byte d (0 = most significant) of the 8-byte key.
func keyByte(key uint64, d int) byte { return byte(key >> uint(56-8*d)) }

// Insert adds key → val (replacing an existing value).
func (t *Tree) Insert(ctx *sim.Ctx, key, val uint64) error {
	if t.root == 0 {
		leaf, err := t.newLeaf(ctx, key, val)
		if err != nil {
			return err
		}
		t.root = leaf
		return nil
	}
	return t.insert(ctx, &t.root, key, val, 0)
}

func (t *Tree) insert(ctx *sim.Ctx, ref *int64, key, val uint64, depth int) error {
	kind, _, err := t.readHeader(ctx, *ref)
	if err != nil {
		return err
	}
	if kind == kindLeaf {
		ek, _, err := t.leafKV(ctx, *ref)
		if err != nil {
			return err
		}
		if ek == key {
			// Replace value in place (8B atomic store, PM-friendly).
			var b [8]byte
			binary.LittleEndian.PutUint64(b[:], val)
			return t.m.Write(ctx, b[:], *ref+16)
		}
		// Split: new Node4 holding both leaves at the first differing byte.
		for keyByte(ek, depth) == keyByte(key, depth) {
			// Same radix byte: need an intermediate node chain.
			n4, err := t.alloc(sizeN4)
			if err != nil {
				return err
			}
			if err := t.writeHeader(ctx, n4, kindN4, 1); err != nil {
				return err
			}
			if err := t.setN4Slot(ctx, n4, 0, keyByte(key, depth), *ref); err != nil {
				return err
			}
			old := *ref
			*ref = n4
			// Child slot 0 of the chain node points at the old subtree;
			// recurse into it one radix level down.
			return t.insertIntoNode(ctx, n4, key, val, depth+1, old)
		}
		n4, err := t.alloc(sizeN4)
		if err != nil {
			return err
		}
		leaf, err := t.newLeaf(ctx, key, val)
		if err != nil {
			return err
		}
		if err := t.writeHeader(ctx, n4, kindN4, 2); err != nil {
			return err
		}
		if err := t.setN4Slot(ctx, n4, 0, keyByte(ek, depth), *ref); err != nil {
			return err
		}
		if err := t.setN4Slot(ctx, n4, 1, keyByte(key, depth), leaf); err != nil {
			return err
		}
		*ref = n4
		return nil
	}
	// Interior node: find or add the child for this radix byte.
	b := keyByte(key, depth)
	child, slot, err := t.findChild(ctx, *ref, kind, b)
	if err != nil {
		return err
	}
	if child != 0 {
		newChild := child
		if err := t.insert(ctx, &newChild, key, val, depth+1); err != nil {
			return err
		}
		if newChild != child {
			if err := t.updateChild(ctx, *ref, kind, slot, b, newChild); err != nil {
				return err
			}
		}
		return nil
	}
	leaf, err := t.newLeaf(ctx, key, val)
	if err != nil {
		return err
	}
	grown, err := t.addChild(ctx, *ref, kind, b, leaf)
	if err != nil {
		return err
	}
	if grown != 0 {
		*ref = grown
	}
	return nil
}

// insertIntoNode recurses into the subtree `old` hanging off a fresh chain
// node at `node`.
func (t *Tree) insertIntoNode(ctx *sim.Ctx, node int64, key, val uint64, depth int, old int64) error {
	sub := old
	if err := t.insert(ctx, &sub, key, val, depth); err != nil {
		return err
	}
	if sub != old {
		// The subtree root changed: rewrite slot 0's child pointer.
		kind, _, err := t.readHeader(ctx, node)
		if err != nil {
			return err
		}
		return t.updateChild(ctx, node, kind, 0, keyByte(key, depth-1), sub)
	}
	return nil
}

// --- node layout accessors -------------------------------------------------

func (t *Tree) setN4Slot(ctx *sim.Ctx, node int64, slot int, b byte, child int64) error {
	if err := t.m.Write(ctx, []byte{b}, node+8+int64(slot)); err != nil {
		return err
	}
	var cb [8]byte
	binary.LittleEndian.PutUint64(cb[:], uint64(child))
	return t.m.Write(ctx, cb[:], node+12+int64(slot)*8)
}

// findChild returns (childOffset, slot) for radix byte b, 0 if absent.
func (t *Tree) findChild(ctx *sim.Ctx, node int64, kind byte, b byte) (int64, int, error) {
	switch kind {
	case kindN4, kindN16:
		n := 4
		if kind == kindN16 {
			n = 16
		}
		_, count, err := t.readHeader(ctx, node)
		if err != nil {
			return 0, 0, err
		}
		keys := make([]byte, n)
		if err := t.m.Read(ctx, keys, node+8); err != nil {
			return 0, 0, err
		}
		for i := 0; i < count; i++ {
			if keys[i] == b {
				var cb [8]byte
				if err := t.m.Read(ctx, cb[:], node+8+int64(n)+int64(i)*8); err != nil {
					return 0, 0, err
				}
				return int64(binary.LittleEndian.Uint64(cb[:])), i, nil
			}
		}
		return 0, -1, nil
	case kindN48:
		var idx [1]byte
		if err := t.m.Read(ctx, idx[:], node+8+int64(b)); err != nil {
			return 0, 0, err
		}
		if idx[0] == 0 {
			return 0, -1, nil
		}
		slot := int(idx[0]) - 1
		var cb [8]byte
		if err := t.m.Read(ctx, cb[:], node+8+256+int64(slot)*8); err != nil {
			return 0, 0, err
		}
		return int64(binary.LittleEndian.Uint64(cb[:])), slot, nil
	case kindN256:
		var cb [8]byte
		if err := t.m.Read(ctx, cb[:], node+8+int64(b)*8); err != nil {
			return 0, 0, err
		}
		return int64(binary.LittleEndian.Uint64(cb[:])), int(b), nil
	}
	return 0, -1, errors.New("part: bad node kind")
}

// updateChild rewrites the child pointer in an existing slot.
func (t *Tree) updateChild(ctx *sim.Ctx, node int64, kind byte, slot int, b byte, child int64) error {
	var cb [8]byte
	binary.LittleEndian.PutUint64(cb[:], uint64(child))
	switch kind {
	case kindN4:
		return t.m.Write(ctx, cb[:], node+12+int64(slot)*8)
	case kindN16:
		return t.m.Write(ctx, cb[:], node+24+int64(slot)*8)
	case kindN48:
		return t.m.Write(ctx, cb[:], node+8+256+int64(slot)*8)
	case kindN256:
		return t.m.Write(ctx, cb[:], node+8+int64(b)*8)
	}
	return errors.New("part: bad node kind")
}

// addChild inserts a new child, growing the node when full. Returns the
// offset of the replacement node if the node was grown, else 0.
func (t *Tree) addChild(ctx *sim.Ctx, node int64, kind byte, b byte, child int64) (int64, error) {
	_, count, err := t.readHeader(ctx, node)
	if err != nil {
		return 0, err
	}
	var cb [8]byte
	binary.LittleEndian.PutUint64(cb[:], uint64(child))
	switch kind {
	case kindN4:
		if count < 4 {
			if err := t.setN4Slot(ctx, node, count, b, child); err != nil {
				return 0, err
			}
			return 0, t.writeHeader(ctx, node, kindN4, count+1)
		}
		return t.grow(ctx, node, kindN4, kindN16, b, child)
	case kindN16:
		if count < 16 {
			if err := t.m.Write(ctx, []byte{b}, node+8+int64(count)); err != nil {
				return 0, err
			}
			if err := t.m.Write(ctx, cb[:], node+24+int64(count)*8); err != nil {
				return 0, err
			}
			return 0, t.writeHeader(ctx, node, kindN16, count+1)
		}
		return t.grow(ctx, node, kindN16, kindN48, b, child)
	case kindN48:
		if count < 48 {
			if err := t.m.Write(ctx, []byte{byte(count + 1)}, node+8+int64(b)); err != nil {
				return 0, err
			}
			if err := t.m.Write(ctx, cb[:], node+8+256+int64(count)*8); err != nil {
				return 0, err
			}
			return 0, t.writeHeader(ctx, node, kindN48, count+1)
		}
		return t.grow(ctx, node, kindN48, kindN256, b, child)
	case kindN256:
		if err := t.m.Write(ctx, cb[:], node+8+int64(b)*8); err != nil {
			return 0, err
		}
		return 0, t.writeHeader(ctx, node, kindN256, count+1)
	}
	return 0, errors.New("part: bad node kind")
}

// grow copies a full node into the next-larger kind and adds the new child.
func (t *Tree) grow(ctx *sim.Ctx, node int64, from, to byte, b byte, child int64) (int64, error) {
	// Collect existing children.
	type pair struct {
		b byte
		c int64
	}
	var pairs []pair
	for rb := 0; rb < 256; rb++ {
		c, _, err := t.findChild(ctx, node, from, byte(rb))
		if err != nil {
			return 0, err
		}
		if c != 0 {
			pairs = append(pairs, pair{byte(rb), c})
		}
	}
	pairs = append(pairs, pair{b, child})
	var size int64
	switch to {
	case kindN16:
		size = sizeN16
	case kindN48:
		size = sizeN48
	case kindN256:
		size = sizeN256
	}
	nn, err := t.alloc(size)
	if err != nil {
		return 0, err
	}
	if err := t.writeHeader(ctx, nn, to, 0); err != nil {
		return 0, err
	}
	for _, p := range pairs {
		if _, err := t.addChild(ctx, nn, to, p.b, p.c); err != nil {
			return 0, err
		}
	}
	return nn, nil
}

// Lookup returns the value stored at key.
func (t *Tree) Lookup(ctx *sim.Ctx, key uint64) (uint64, bool, error) {
	off := t.root
	depth := 0
	for off != 0 {
		kind, _, err := t.readHeader(ctx, off)
		if err != nil {
			return 0, false, err
		}
		if kind == kindLeaf {
			k, v, err := t.leafKV(ctx, off)
			if err != nil {
				return 0, false, err
			}
			return v, k == key, nil
		}
		child, _, err := t.findChild(ctx, off, kind, keyByte(key, depth))
		if err != nil {
			return 0, false, err
		}
		off = child
		depth++
	}
	return 0, false, nil
}

// UsedBytes reports pool consumption.
func (t *Tree) UsedBytes() int64 { return t.bump }
