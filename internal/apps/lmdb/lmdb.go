// Package lmdb implements a simplified LMDB-style memory-mapped B+tree
// database, reproducing the access pattern the paper evaluates (§5.4):
//
//   - a single data file memory-mapped up front for the whole map size;
//   - on-demand space allocation: the file is grown with ftruncate (not
//     fallocate), so every first touch of a page takes a page fault and
//     the file system allocates at fault time — "LMDB does on-demand
//     allocations and zero-outs pages on page faults by using ftruncate()
//     instead of fallocate() ... this reduces space-amplification, but
//     leads to costly page faults";
//   - copy-on-write pages: each committed batch writes new versions of the
//     touched pages and a new meta page.
//
// The tree maps uint64 keys to byte values. Interior structure follows
// LMDB loosely (fixed 4KiB pages, CoW appends, two meta pages) — enough
// for the page-touch pattern to match; it is not a full MVCC engine.
package lmdb

import (
	"encoding/binary"
	"errors"
	"fmt"

	"repro/internal/sim"
	"repro/internal/vfs"
	"repro/internal/vmm"
)

const (
	// PageSize is LMDB's page size.
	PageSize = 4096
	// leafCap is how many (key, valRef) slots fit a leaf page.
	leafCap = (PageSize - 16) / 24
	// branchCap is how many (key, child) slots fit a branch page.
	branchCap = (PageSize - 16) / 16
)

// ErrFull is returned when the map size is exhausted.
var ErrFull = errors.New("lmdb: map full")

// DB is an open database.
type DB struct {
	fs   vfs.FS
	file vfs.File
	m    *vmm.Mapping

	mapSize  int64
	nextPage int64 // bump page allocator (CoW append)
	// valTail packs values: byte offset within the value area's last page.
	valPage int64
	valOff  int64
	// txnPages are pages allocated during the current batch transaction:
	// LMDB rewrites a dirty page once per transaction, so nodes CoW'd
	// earlier in the same batch are updated in place.
	txnPages map[int64]bool
	// dirty caches the decoded nodes touched by the current transaction;
	// they are serialised to the mapping once, at commit.
	dirty map[int64]*node

	// DRAM page cache of the tree topology (page id → decoded node); the
	// authoritative bytes live in the mapping. LMDB similarly relies on
	// the OS page cache being the mapping itself.
	root  int64
	depth int
}

// Options configure Open.
type Options struct {
	// MapSize is the mmap reservation (file grows on demand under it).
	MapSize int64
	// Path of the database file.
	Path string
}

// Open creates (or truncates) a database on fs.
func Open(ctx *sim.Ctx, fs vfs.FS, opts Options) (*DB, error) {
	if opts.MapSize <= 0 {
		opts.MapSize = 64 << 20
	}
	if opts.Path == "" {
		opts.Path = "/data.mdb"
	}
	f, err := fs.Create(ctx, opts.Path)
	if err != nil {
		return nil, err
	}
	// LMDB sizes the file with ftruncate: sparse, no allocation yet.
	if err := f.Truncate(ctx, opts.MapSize); err != nil {
		return nil, err
	}
	// One shared full-file mapping, LMDB WRITEMAP-style: stores land in
	// the map directly and the meta page is msync'd at commit.
	m, err := vmm.Map(ctx, f, opts.MapSize, vmm.Config{
		Mode:        vmm.ModeShared,
		Sync:        vmm.SyncLazy,
		MapFullFile: true,
	})
	if err != nil {
		return nil, err
	}
	db := &DB{fs: fs, file: f, m: m, mapSize: opts.MapSize, nextPage: 2, root: -1,
		valPage: -1, txnPages: map[int64]bool{}, dirty: map[int64]*node{}}
	// Two meta pages at the front, LMDB-style.
	if err := db.writeMeta(ctx, 0); err != nil {
		return nil, err
	}
	return db, nil
}

// Mapping exposes the underlying mapping (experiments read fault counters
// from the ctx used to drive it).
func (db *DB) Mapping() *vmm.Mapping { return db.m }

func (db *DB) writeMeta(ctx *sim.Ctx, txnID uint64) error {
	var meta [32]byte
	binary.LittleEndian.PutUint64(meta[0:], 0xBEEFC0DE)
	binary.LittleEndian.PutUint64(meta[8:], txnID)
	binary.LittleEndian.PutUint64(meta[16:], uint64(db.root))
	binary.LittleEndian.PutUint64(meta[24:], uint64(db.nextPage))
	// Alternate between the two meta pages like LMDB, and msync the one
	// just written: the commit is durable when the meta page is.
	metaOff := int64(txnID%2) * PageSize
	if err := db.m.Write(ctx, meta[:], metaOff); err != nil {
		return err
	}
	return db.m.Msync(ctx, metaOff, PageSize)
}

// allocPage bumps the CoW frontier.
func (db *DB) allocPage() (int64, error) {
	if (db.nextPage+1)*PageSize > db.mapSize {
		return 0, ErrFull
	}
	p := db.nextPage
	db.nextPage++
	return p, nil
}

// page layout (leaf):   [kind u8|pad|count u16|pad4|...] then count slots of
// (key u64, valPage u64, valLen u32, pad u32).
// page layout (branch): header then count slots of (key u64, child u64).

type node struct {
	page int64
	leaf bool
	keys []uint64
	vals [][2]int64 // leaf: (byte offset, length) of the value
	kids []int64    // branch children
}

func (db *DB) readNode(ctx *sim.Ctx, page int64) (*node, error) {
	if n, ok := db.dirty[page]; ok {
		return n, nil
	}
	var hdr [8]byte
	if err := db.m.Read(ctx, hdr[:], page*PageSize); err != nil {
		return nil, err
	}
	leaf := hdr[0] == 1
	count := int(binary.LittleEndian.Uint16(hdr[2:]))
	n := &node{page: page, leaf: leaf}
	if leaf {
		buf := make([]byte, count*24)
		if err := db.m.Read(ctx, buf, page*PageSize+16); err != nil {
			return nil, err
		}
		for i := 0; i < count; i++ {
			o := i * 24
			n.keys = append(n.keys, binary.LittleEndian.Uint64(buf[o:]))
			off := int64(binary.LittleEndian.Uint64(buf[o+8:]))
			l := int64(binary.LittleEndian.Uint32(buf[o+16:]))
			n.vals = append(n.vals, [2]int64{off, l})
		}
	} else {
		buf := make([]byte, count*16)
		if err := db.m.Read(ctx, buf, page*PageSize+16); err != nil {
			return nil, err
		}
		for i := 0; i < count; i++ {
			o := i * 16
			n.keys = append(n.keys, binary.LittleEndian.Uint64(buf[o:]))
			n.kids = append(n.kids, int64(binary.LittleEndian.Uint64(buf[o+8:])))
		}
	}
	return n, nil
}

func (db *DB) writeNode(ctx *sim.Ctx, n *node) error {
	var buf []byte
	var hdr [16]byte
	if n.leaf {
		hdr[0] = 1
	}
	binary.LittleEndian.PutUint16(hdr[2:], uint16(len(n.keys)))
	buf = append(buf, hdr[:]...)
	if n.leaf {
		for i, k := range n.keys {
			var s [24]byte
			binary.LittleEndian.PutUint64(s[0:], k)
			binary.LittleEndian.PutUint64(s[8:], uint64(n.vals[i][0]))
			binary.LittleEndian.PutUint32(s[16:], uint32(n.vals[i][1]))
			buf = append(buf, s[:]...)
		}
	} else {
		for i, k := range n.keys {
			var s [16]byte
			binary.LittleEndian.PutUint64(s[0:], k)
			binary.LittleEndian.PutUint64(s[8:], uint64(n.kids[i]))
			buf = append(buf, s[:]...)
		}
	}
	return db.m.Write(ctx, buf, n.page*PageSize)
}

// writeValue appends a value to the packed value area, starting a fresh
// page run when the current one is exhausted (LMDB packs overflow values
// contiguously rather than burning a page per value).
func (db *DB) writeValue(ctx *sim.Ctx, val []byte) (int64, error) {
	need := int64(len(val))
	if db.valPage < 0 || db.valOff+need > PageSize {
		pages := (need + PageSize - 1) / PageSize
		first, err := db.allocPage()
		if err != nil {
			return 0, err
		}
		for i := int64(1); i < pages; i++ {
			if _, err := db.allocPage(); err != nil {
				return 0, err
			}
		}
		db.valPage = first
		db.valOff = 0
	}
	off := db.valPage*PageSize + db.valOff
	db.valOff += need
	if db.valOff >= PageSize {
		db.valPage = -1 // multi-page value: next value starts fresh
	}
	if err := db.m.Write(ctx, val, off); err != nil {
		return 0, err
	}
	return off, nil
}

// Put inserts or replaces key. Pages on the root-to-leaf path are
// rewritten copy-on-write, as LMDB does per committed transaction. Batched
// workloads amortise this by calling PutBatch.
func (db *DB) Put(ctx *sim.Ctx, key uint64, val []byte) error {
	return db.PutBatch(ctx, []uint64{key}, [][]byte{val})
}

// PutBatch inserts a batch in one transaction: values are written, leaves
// updated CoW once per touched leaf, and a meta page committed at the end
// (the fillseqbatch pattern, LMDB's best case).
func (db *DB) PutBatch(ctx *sim.Ctx, keys []uint64, vals [][]byte) error {
	if len(keys) != len(vals) {
		return fmt.Errorf("lmdb: batch length mismatch")
	}
	// A batch is one transaction: pages dirtied earlier in the batch are
	// rewritten in place rather than CoW'd again, and every dirty node is
	// serialised to the mapping exactly once, at commit.
	db.txnPages = map[int64]bool{}
	db.dirty = map[int64]*node{}
	for i, k := range keys {
		off, err := db.writeValue(ctx, vals[i])
		if err != nil {
			return err
		}
		if err := db.insertRef(ctx, k, off, int64(len(vals[i]))); err != nil {
			return err
		}
	}
	for _, n := range db.dirty {
		if err := db.writeNode(ctx, n); err != nil {
			return err
		}
	}
	db.dirty = map[int64]*node{}
	return db.writeMeta(ctx, uint64(db.nextPage))
}

// insertRef places (key → value ref) into the tree with CoW path rewrite.
func (db *DB) insertRef(ctx *sim.Ctx, key uint64, valOff, valLen int64) error {
	if db.root < 0 {
		p, err := db.allocPage()
		if err != nil {
			return err
		}
		root := &node{page: p, leaf: true, keys: []uint64{key}, vals: [][2]int64{{valOff, valLen}}}
		db.root = p
		db.txnPages[p] = true
		db.depth = 1
		db.dirty[p] = root
		return nil
	}
	// Walk to the leaf, remembering the path.
	var path []*node
	cur := db.root
	for {
		n, err := db.readNode(ctx, cur)
		if err != nil {
			return err
		}
		path = append(path, n)
		if n.leaf {
			break
		}
		// Child with the greatest key <= key (first child as fallback).
		idx := 0
		for i, k := range n.keys {
			if k <= key {
				idx = i
			} else {
				break
			}
		}
		cur = n.kids[idx]
	}
	leaf := path[len(path)-1]
	// Insert into the leaf (sorted).
	pos := 0
	for pos < len(leaf.keys) && leaf.keys[pos] < key {
		pos++
	}
	if pos < len(leaf.keys) && leaf.keys[pos] == key {
		leaf.vals[pos] = [2]int64{valOff, valLen}
	} else {
		leaf.keys = append(leaf.keys, 0)
		copy(leaf.keys[pos+1:], leaf.keys[pos:])
		leaf.keys[pos] = key
		leaf.vals = append(leaf.vals, [2]int64{})
		copy(leaf.vals[pos+1:], leaf.vals[pos:])
		leaf.vals[pos] = [2]int64{valOff, valLen}
	}
	// CoW: the path gets new pages — except pages this transaction already
	// owns, which are simply rewritten (one CoW per page per txn).
	var split *node
	for i := len(path) - 1; i >= 0; i-- {
		n := path[i]
		oldPage := n.page
		if !db.txnPages[n.page] {
			np, err := db.allocPage()
			if err != nil {
				return err
			}
			delete(db.dirty, n.page)
			n.page = np
			db.txnPages[np] = true
		}
		db.dirty[n.page] = n
		if split != nil {
			// Insert the split sibling into this branch.
			sp := 0
			for sp < len(n.keys) && n.keys[sp] < split.keys[0] {
				sp++
			}
			n.keys = append(n.keys, 0)
			copy(n.keys[sp+1:], n.keys[sp:])
			n.keys[sp] = split.keys[0]
			n.kids = append(n.kids, 0)
			copy(n.kids[sp+1:], n.kids[sp:])
			n.kids[sp] = split.page
			split = nil
		}
		capSlots := leafCap
		if !n.leaf {
			capSlots = branchCap
		}
		if len(n.keys) > capSlots {
			// Split: right half to a sibling page.
			half := len(n.keys) / 2
			sib := &node{leaf: n.leaf}
			sibPage, err := db.allocPage()
			if err != nil {
				return err
			}
			sib.page = sibPage
			db.txnPages[sibPage] = true
			sib.keys = append(sib.keys, n.keys[half:]...)
			n.keys = n.keys[:half]
			if n.leaf {
				sib.vals = append(sib.vals, n.vals[half:]...)
				n.vals = n.vals[:half]
			} else {
				sib.kids = append(sib.kids, n.kids[half:]...)
				n.kids = n.kids[:half]
			}
			db.dirty[sib.page] = sib
			split = sib
		}
		// Fix the parent's child pointer (it will be rewritten next loop).
		if i > 0 {
			parent := path[i-1]
			for j, kid := range parent.kids {
				if kid == oldPage {
					parent.kids[j] = n.page
				}
			}
		} else {
			db.root = n.page
		}
	}
	if split != nil {
		// Root split: new root.
		rp, err := db.allocPage()
		if err != nil {
			return err
		}
		oldRoot := path[0]
		db.txnPages[rp] = true
		root := &node{page: rp, keys: []uint64{oldRoot.keys[0], split.keys[0]},
			kids: []int64{oldRoot.page, split.page}}
		db.dirty[rp] = root
		db.root = rp
		db.depth++
	}
	return nil
}

// Get reads key's value into buf, returning the value length.
func (db *DB) Get(ctx *sim.Ctx, key uint64, buf []byte) (int, error) {
	if db.root < 0 {
		return 0, vfs.ErrNotExist
	}
	cur := db.root
	for {
		n, err := db.readNode(ctx, cur)
		if err != nil {
			return 0, err
		}
		if n.leaf {
			for i, k := range n.keys {
				if k == key {
					l := n.vals[i][1]
					if l > int64(len(buf)) {
						l = int64(len(buf))
					}
					if err := db.m.Read(ctx, buf[:l], n.vals[i][0]); err != nil {
						return 0, err
					}
					return int(l), nil
				}
			}
			return 0, vfs.ErrNotExist
		}
		idx := 0
		for i, k := range n.keys {
			if k <= key {
				idx = i
			} else {
				break
			}
		}
		cur = n.kids[idx]
	}
}

// UsedBytes reports how much of the map the bump allocator consumed.
func (db *DB) UsedBytes() int64 { return db.nextPage * PageSize }
