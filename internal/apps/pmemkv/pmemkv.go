// Package pmemkv implements a PmemKV-style key-value store (§5.4): a
// concurrent-map ("cmap") engine over a pool of memory-mapped files. The
// store "creates a PM pool using fallocate(), and keeps extending the pool
// as it gets used up by creating more files and allocating them via
// fallocate()" — each pool segment is a 128MiB file, preallocated, with
// values written through the mapping. How expensive the resulting page
// faults are depends entirely on the file system's fallocate/fault split
// (zero-at-fallocate vs zero-at-fault), which is what Figure 7(c) and
// Table 2 measure.
package pmemkv

import (
	"encoding/binary"
	"fmt"
	"sync"

	"repro/internal/mmu"
	"repro/internal/sim"
	"repro/internal/vfs"
)

// SegmentSize is the default pool segment file size (128MiB, as in the
// paper).
const SegmentSize = 128 << 20

// DB is an open PmemKV-style store.
type DB struct {
	fs      vfs.FS
	dir     string
	segSize int64

	mu       sync.Mutex
	segments []*segment
	index    map[uint64]ref // cmap: key → location
	shardsMu []sync.Mutex   // models cmap shard locking
}

type segment struct {
	file vfs.File
	m    *mmu.Mapping
	used int64
}

type ref struct {
	seg int
	off int64
	len int32
}

// Open creates a store rooted at dir with the paper's 128MiB segments.
func Open(ctx *sim.Ctx, fs vfs.FS, dir string) (*DB, error) {
	return OpenSized(ctx, fs, dir, SegmentSize)
}

// OpenSized creates a store with a custom pool segment size (scaled-down
// experiment configurations).
func OpenSized(ctx *sim.Ctx, fs vfs.FS, dir string, segSize int64) (*DB, error) {
	if err := fs.Mkdir(ctx, dir); err != nil && err != vfs.ErrExist {
		return nil, err
	}
	if segSize <= 0 {
		segSize = SegmentSize
	}
	db := &DB{fs: fs, dir: dir, segSize: segSize,
		index: make(map[uint64]ref), shardsMu: make([]sync.Mutex, 64)}
	if err := db.grow(ctx); err != nil {
		return nil, err
	}
	return db, nil
}

// grow adds one preallocated 128MiB pool segment.
func (db *DB) grow(ctx *sim.Ctx) error {
	name := fmt.Sprintf("%s/pool%04d", db.dir, len(db.segments))
	f, err := db.fs.Create(ctx, name)
	if err != nil {
		return err
	}
	if err := f.Fallocate(ctx, 0, db.segSize); err != nil {
		return err
	}
	m, err := f.Mmap(ctx, db.segSize)
	if err != nil {
		return err
	}
	db.segments = append(db.segments, &segment{file: f, m: m})
	return nil
}

// Put stores key → val.
func (db *DB) Put(ctx *sim.Ctx, key uint64, val []byte) error {
	need := int64(len(val)) + 16
	db.mu.Lock()
	seg := db.segments[len(db.segments)-1]
	if seg.used+need > db.segSize {
		if err := db.grow(ctx); err != nil {
			db.mu.Unlock()
			return err
		}
		seg = db.segments[len(db.segments)-1]
	}
	off := seg.used
	seg.used += need
	segIdx := len(db.segments) - 1
	db.mu.Unlock()

	// Shard lock (cmap concurrency).
	sh := &db.shardsMu[key%64]
	sh.Lock()
	defer sh.Unlock()

	var hdr [16]byte
	binary.LittleEndian.PutUint64(hdr[0:], key)
	binary.LittleEndian.PutUint64(hdr[8:], uint64(len(val)))
	if err := seg.m.Write(ctx, hdr[:], off); err != nil {
		return err
	}
	if err := seg.m.Write(ctx, val, off+16); err != nil {
		return err
	}
	db.mu.Lock()
	db.index[key] = ref{seg: segIdx, off: off + 16, len: int32(len(val))}
	db.mu.Unlock()
	return nil
}

// Get reads key's value into buf.
func (db *DB) Get(ctx *sim.Ctx, key uint64, buf []byte) (int, error) {
	db.mu.Lock()
	r, ok := db.index[key]
	db.mu.Unlock()
	if !ok {
		return 0, vfs.ErrNotExist
	}
	n := int(r.len)
	if n > len(buf) {
		n = len(buf)
	}
	if err := db.segments[r.seg].m.Read(ctx, buf[:n], r.off); err != nil {
		return 0, err
	}
	return n, nil
}

// Segments reports the pool segment count (growth behaviour tests).
func (db *DB) Segments() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.segments)
}
