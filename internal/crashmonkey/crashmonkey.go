// Package crashmonkey reimplements the crash-consistency methodology the
// paper uses to validate WineFS (§5.2): an Automatic-Crash-Explorer-style
// workload generator produces small sequences of metadata-mutating system
// calls; for each workload the device records every store between fences;
// crash states are constructed from all permitted persistence outcomes of
// the in-flight stores; each crash state is recovered by a real mount and
// then checked two ways — structural invariants via the offline fsck, and
// semantic atomicity against an oracle: because WineFS operations are
// synchronous, the recovered namespace must equal the state exactly
// before or exactly after the in-flight operation.
package crashmonkey

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/pmem"
	"repro/internal/sim"
	"repro/internal/vfs"
	"repro/internal/winefs"
)

// OpKind enumerates the system calls ACE composes.
type OpKind int

// Operation kinds.
const (
	OpCreate OpKind = iota
	OpMkdir
	OpUnlink
	OpRmdir
	OpRename
	OpAppend
	OpTruncate
	OpFalloc
	OpFsync
)

var kindNames = map[OpKind]string{
	OpCreate: "create", OpMkdir: "mkdir", OpUnlink: "unlink",
	OpRmdir: "rmdir", OpRename: "rename", OpAppend: "append",
	OpTruncate: "truncate", OpFalloc: "falloc", OpFsync: "fsync",
}

// Op is one system call in a workload.
type Op struct {
	Kind OpKind
	A, B string
	Size int64
}

func (o Op) String() string {
	if o.Kind == OpRename {
		return fmt.Sprintf("rename(%s,%s)", o.A, o.B)
	}
	return fmt.Sprintf("%s(%s)", kindNames[o.Kind], o.A)
}

// Workload is a crash-test case: Setup runs before recording; every op in
// Ops is crash-explored.
type Workload struct {
	Name  string
	Setup []Op
	Ops   []Op
}

// apply runs one op, ignoring benign errors (ACE workloads include ops
// that may fail depending on earlier state).
func apply(ctx *sim.Ctx, fs vfs.FS, o Op) error {
	switch o.Kind {
	case OpCreate:
		f, err := fs.Create(ctx, o.A)
		if err != nil {
			return err
		}
		return f.Close(ctx)
	case OpMkdir:
		return fs.Mkdir(ctx, o.A)
	case OpUnlink:
		return fs.Unlink(ctx, o.A)
	case OpRmdir:
		return fs.Rmdir(ctx, o.A)
	case OpRename:
		return fs.Rename(ctx, o.A, o.B)
	case OpAppend:
		f, err := fs.Open(ctx, o.A)
		if err != nil {
			f, err = fs.Create(ctx, o.A)
			if err != nil {
				return err
			}
		}
		_, err = f.Append(ctx, make([]byte, o.Size))
		return err
	case OpTruncate:
		f, err := fs.Open(ctx, o.A)
		if err != nil {
			return err
		}
		return f.Truncate(ctx, o.Size)
	case OpFalloc:
		f, err := fs.Open(ctx, o.A)
		if err != nil {
			return err
		}
		return f.Fallocate(ctx, 0, o.Size)
	case OpFsync:
		f, err := fs.Open(ctx, o.A)
		if err != nil {
			return err
		}
		return f.Fsync(ctx)
	}
	return nil
}

// State is a canonical namespace snapshot: "path kind size" lines, sorted.
type State string

// captureState walks the mounted FS.
func captureState(ctx *sim.Ctx, fs vfs.FS) State {
	var lines []string
	var walk func(dir string)
	walk = func(dir string) {
		ents, err := fs.ReadDir(ctx, dir)
		if err != nil {
			lines = append(lines, fmt.Sprintf("ERR %s %v", dir, err))
			return
		}
		for _, e := range ents {
			p := dir + "/" + e.Name
			if dir == "/" {
				p = "/" + e.Name
			}
			if e.IsDir {
				lines = append(lines, fmt.Sprintf("%s dir", p))
				walk(p)
			} else {
				fi, err := fs.Stat(ctx, p)
				if err != nil {
					lines = append(lines, fmt.Sprintf("ERR %s %v", p, err))
					continue
				}
				lines = append(lines, fmt.Sprintf("%s file %d", p, fi.Size))
			}
		}
	}
	walk("/")
	sort.Strings(lines)
	return State(strings.Join(lines, "\n"))
}

// Result summarises one workload's exploration.
type Result struct {
	Workload    string
	Ops         int
	CrashStates int
	Failures    []string
}

// OK reports whether every crash state recovered consistently.
func (r Result) OK() bool { return len(r.Failures) == 0 }

// Config tunes the explorer.
type Config struct {
	// DeviceSize for the scratch FS (default 64 MiB).
	DeviceSize int64
	// MaxSubsets bounds the in-flight-store subsets explored per epoch
	// (default 256; epochs smaller than log2(MaxSubsets) stores are
	// explored exhaustively).
	MaxSubsets int
	// CPUs for the WineFS instance (default 2, exercising the multi-journal
	// recovery path).
	CPUs int
	Seed uint64
}

func (c *Config) defaults() {
	if c.DeviceSize == 0 {
		c.DeviceSize = 64 << 20
	}
	if c.MaxSubsets == 0 {
		c.MaxSubsets = 256
	}
	if c.CPUs == 0 {
		c.CPUs = 2
	}
}

// Run crash-explores one workload against WineFS.
func Run(w Workload, cfg Config) Result {
	cfg.defaults()
	res := Result{Workload: w.Name, Ops: len(w.Ops)}
	ctx := sim.NewCtx(1, 0)
	dev := pmem.New(cfg.DeviceSize)
	fs, err := winefs.Mkfs(ctx, dev, winefs.Options{CPUs: cfg.CPUs, InodesPerCPU: 512})
	if err != nil {
		res.Failures = append(res.Failures, fmt.Sprintf("mkfs: %v", err))
		return res
	}
	for _, o := range w.Setup {
		if err := apply(ctx, fs, o); err != nil {
			res.Failures = append(res.Failures, fmt.Sprintf("setup %s: %v", o, err))
			return res
		}
	}
	rng := sim.NewRand(cfg.Seed + 77)

	for k, o := range w.Ops {
		before := captureState(ctx, fs)
		base := dev.Snapshot()
		dev.StartTrace()
		opErr := apply(ctx, fs, o)
		trace := dev.StopTrace()
		after := captureState(ctx, fs)
		if opErr != nil {
			// The op legitimately failed (e.g. unlink of missing file):
			// nothing in flight to explore beyond full/none.
			continue
		}
		maxEpoch := 0
		for _, s := range trace {
			if s.Epoch > maxEpoch {
				maxEpoch = s.Epoch
			}
		}
		// For every fence boundary, explore persistence subsets of that
		// epoch's in-flight stores.
		for e := 0; e <= maxEpoch; e++ {
			var durable []pmem.Store
			var inflight []pmem.Store
			for _, s := range trace {
				switch {
				case s.Epoch < e:
					durable = append(durable, s)
				case s.Epoch == e:
					inflight = append(inflight, s)
				}
			}
			subsets := enumerate(len(inflight), cfg.MaxSubsets, rng)
			for _, mask := range subsets {
				img := base.Clone()
				img.Apply(durable)
				var chosen []pmem.Store
				for i, s := range inflight {
					if mask&(1<<uint(i)) != 0 {
						chosen = append(chosen, s)
					}
				}
				img.Apply(chosen)
				res.CrashStates++
				if msg := checkCrashState(img, cfg, before, after, o, e, mask); msg != "" {
					res.Failures = append(res.Failures, fmt.Sprintf("op %d (%s): %s", k, o, msg))
					if len(res.Failures) > 20 {
						return res
					}
				}
			}
		}
	}
	return res
}

// enumerate yields subset bitmasks of n in-flight stores: exhaustive when
// small, sampled otherwise. Always includes none-persisted and
// all-persisted.
func enumerate(n, maxSubsets int, rng *sim.Rand) []uint64 {
	if n == 0 {
		return []uint64{0}
	}
	if n <= 16 && 1<<uint(n) <= maxSubsets {
		out := make([]uint64, 1<<uint(n))
		for i := range out {
			out[i] = uint64(i)
		}
		return out
	}
	out := []uint64{0, (1 << uint(n)) - 1}
	for len(out) < maxSubsets {
		out = append(out, rng.Uint64()&((1<<uint(n))-1))
	}
	return out
}

// checkCrashState recovers one crash image and validates it.
func checkCrashState(img *pmem.Image, cfg Config, before, after State, o Op, epoch int, mask uint64) string {
	scratch := pmem.New(cfg.DeviceSize)
	scratch.Restore(img)
	rctx := sim.NewCtx(2, 0)
	rfs, err := winefs.Mount(rctx, scratch, winefs.Options{CPUs: cfg.CPUs, InodesPerCPU: 512})
	if err != nil {
		return fmt.Sprintf("epoch %d mask %x: mount failed: %v", epoch, mask, err)
	}
	if rep := winefs.Check(scratch); !rep.OK() {
		return fmt.Sprintf("epoch %d mask %x: fsck: %s", epoch, mask, rep.Errors[0])
	}
	got := captureState(rctx, rfs)
	if got != before && got != after {
		return fmt.Sprintf("epoch %d mask %x: atomicity violated:\n got: %q\n pre: %q\npost: %q",
			epoch, mask, got, before, after)
	}
	return ""
}

// GenerateSeq1 produces ACE's one-op workloads over a small file universe.
func GenerateSeq1() []Workload {
	setup := []Op{
		{Kind: OpMkdir, A: "/A"},
		{Kind: OpMkdir, A: "/B"},
		{Kind: OpCreate, A: "/A/foo"},
		{Kind: OpAppend, A: "/A/foo", Size: 5000},
		{Kind: OpCreate, A: "/bar"},
	}
	ops := []Op{
		{Kind: OpCreate, A: "/A/new"},
		{Kind: OpCreate, A: "/new"},
		{Kind: OpMkdir, A: "/A/sub"},
		{Kind: OpUnlink, A: "/A/foo"},
		{Kind: OpUnlink, A: "/bar"},
		{Kind: OpRmdir, A: "/B"},
		{Kind: OpRename, A: "/A/foo", B: "/A/foo2"},
		{Kind: OpRename, A: "/A/foo", B: "/B/foo"},
		{Kind: OpRename, A: "/A/foo", B: "/bar"}, // replaces target
		{Kind: OpAppend, A: "/A/foo", Size: 3000},
		{Kind: OpTruncate, A: "/A/foo", Size: 1000},
		{Kind: OpTruncate, A: "/A/foo", Size: 100000},
		{Kind: OpFalloc, A: "/bar", Size: 1 << 20},
		{Kind: OpFsync, A: "/A/foo"},
	}
	var out []Workload
	for i, o := range ops {
		out = append(out, Workload{
			Name:  fmt.Sprintf("seq1-%02d-%s", i, o),
			Setup: setup,
			Ops:   []Op{o},
		})
	}
	return out
}

// GenerateSeq2 produces two-op workloads (ACE seq-2): dependent pairs that
// historically expose reordering bugs.
func GenerateSeq2() []Workload {
	setup := []Op{
		{Kind: OpMkdir, A: "/A"},
		{Kind: OpCreate, A: "/A/foo"},
		{Kind: OpAppend, A: "/A/foo", Size: 4096},
	}
	pairs := [][2]Op{
		{{Kind: OpCreate, A: "/A/x"}, {Kind: OpRename, A: "/A/x", B: "/A/y"}},
		{{Kind: OpCreate, A: "/A/x"}, {Kind: OpUnlink, A: "/A/x"}},
		{{Kind: OpMkdir, A: "/D"}, {Kind: OpCreate, A: "/D/f"}},
		{{Kind: OpMkdir, A: "/D"}, {Kind: OpRmdir, A: "/D"}},
		{{Kind: OpUnlink, A: "/A/foo"}, {Kind: OpCreate, A: "/A/foo"}},
		{{Kind: OpRename, A: "/A/foo", B: "/A/bar"}, {Kind: OpCreate, A: "/A/foo"}},
		{{Kind: OpAppend, A: "/A/foo", Size: 8192}, {Kind: OpTruncate, A: "/A/foo", Size: 0}},
		{{Kind: OpTruncate, A: "/A/foo", Size: 0}, {Kind: OpAppend, A: "/A/foo", Size: 4096}},
		{{Kind: OpCreate, A: "/A/x"}, {Kind: OpMkdir, A: "/A/d"}},
		{{Kind: OpRename, A: "/A/foo", B: "/g"}, {Kind: OpRename, A: "/g", B: "/A/foo"}},
	}
	var out []Workload
	for i, p := range pairs {
		out = append(out, Workload{
			Name:  fmt.Sprintf("seq2-%02d-%s+%s", i, p[0], p[1]),
			Setup: setup,
			Ops:   []Op{p[0], p[1]},
		})
	}
	return out
}
