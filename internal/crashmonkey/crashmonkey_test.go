package crashmonkey

import (
	"testing"

	"repro/internal/pmem"
	"repro/internal/sim"
	"repro/internal/winefs"
)

func TestEnumerate(t *testing.T) {
	rng := sim.NewRand(1)
	if got := enumerate(0, 256, rng); len(got) != 1 || got[0] != 0 {
		t.Fatalf("n=0: %v", got)
	}
	got := enumerate(3, 256, rng)
	if len(got) != 8 {
		t.Fatalf("n=3 exhaustive: %d subsets", len(got))
	}
	got = enumerate(30, 64, rng)
	if len(got) != 64 {
		t.Fatalf("n=30 sampled: %d", len(got))
	}
	if got[0] != 0 || got[1] != (1<<30)-1 {
		t.Fatal("sampled set must include none/all")
	}
}

func TestCaptureStateCanonical(t *testing.T) {
	ctx := sim.NewCtx(1, 0)
	dev := pmem.New(64 << 20)
	fs, _ := winefs.Mkfs(ctx, dev, winefs.Options{CPUs: 2})
	fs.Mkdir(ctx, "/d")
	f, _ := fs.Create(ctx, "/d/f")
	f.Append(ctx, make([]byte, 123))
	s1 := captureState(ctx, fs)
	s2 := captureState(ctx, fs)
	if s1 != s2 || s1 == "" {
		t.Fatalf("capture not deterministic: %q vs %q", s1, s2)
	}
	fs.Unlink(ctx, "/d/f")
	if captureState(ctx, fs) == s1 {
		t.Fatal("state did not change after unlink")
	}
}

// TestSeq1 runs the full single-op ACE suite. This is the §5.2 experiment:
// "Currently, WineFS passes all the CrashMonkey tests."
func TestSeq1(t *testing.T) {
	if testing.Short() {
		t.Skip("crash exploration")
	}
	total := 0
	for _, w := range GenerateSeq1() {
		res := Run(w, Config{MaxSubsets: 128, Seed: 42})
		if !res.OK() {
			t.Errorf("%s: %d failures, first: %s", w.Name, len(res.Failures), res.Failures[0])
		}
		total += res.CrashStates
	}
	if total < 100 {
		t.Fatalf("only %d crash states explored", total)
	}
	t.Logf("seq1: %d crash states, all recovered consistently", total)
}

func TestSeq2(t *testing.T) {
	if testing.Short() {
		t.Skip("crash exploration")
	}
	total := 0
	for _, w := range GenerateSeq2() {
		res := Run(w, Config{MaxSubsets: 64, Seed: 7})
		if !res.OK() {
			t.Errorf("%s: %d failures, first: %s", w.Name, len(res.Failures), res.Failures[0])
		}
		total += res.CrashStates
	}
	t.Logf("seq2: %d crash states, all recovered consistently", total)
}

func TestFsckDetectsCorruption(t *testing.T) {
	// The checker itself must be able to fail: corrupt a dirent to point
	// at a dead inode and expect an error.
	ctx := sim.NewCtx(1, 0)
	dev := pmem.New(64 << 20)
	fs, _ := winefs.Mkfs(ctx, dev, winefs.Options{CPUs: 2, InodesPerCPU: 512})
	fs.Mkdir(ctx, "/d")
	f, _ := fs.Create(ctx, "/d/f")
	f.Append(ctx, make([]byte, 4096))
	if rep := winefs.Check(dev); !rep.OK() {
		t.Fatalf("clean image flagged: %v", rep.Errors)
	}
	// Find the dirent for "f" on the device and point it at ino 999999.
	blob := make([]byte, dev.Size())
	dev.ReadAt(blob, 0)
	needle := []byte("f")
	corrupted := false
	for off := int64(0); off+64 <= dev.Size() && !corrupted; off += 8 {
		// dirent layout: ino u64 | valid | nameLen=1 | "f"
		if blob[off+8] == 1 && blob[off+9] == 1 && blob[off+10] == needle[0] && blob[off+11] == 0 {
			bad := []byte{0x3F, 0x42, 0x0F, 0, 0, 0, 0, 0} // ino 999999
			dev.WriteAt(bad, off)
			corrupted = true
		}
	}
	if !corrupted {
		t.Skip("could not locate dirent to corrupt")
	}
	if rep := winefs.Check(dev); rep.OK() {
		t.Fatal("fsck missed a dangling dirent")
	}
}
