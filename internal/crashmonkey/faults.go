package crashmonkey

import (
	"errors"
	"fmt"
	"runtime/debug"

	"repro/internal/pmem"
	"repro/internal/sim"
	"repro/internal/tier"
	"repro/internal/vfs"
	"repro/internal/winefs"
)

// Fault campaign: the crash-exploration harness extended with media faults.
// Each seeded run replays an ACE workload, builds a crash image at a random
// fence epoch with torn in-flight stores and/or poisons cache lines the
// workload touched, and then asserts the degradation ladder: every outcome
// must be transparent recovery, a clean EIO, or read-only degradation —
// never a panic and never silently wrong data. The data oracle is exact
// because every workload writes zeros: any successful read that returns a
// nonzero byte is silent corruption.

// FaultMode selects how a run injures the device.
type FaultMode int

// Fault modes.
const (
	// ModeTorn builds a crash image whose in-flight stores are torn at cache
	// line granularity (no poison).
	ModeTorn FaultMode = iota
	// ModePoisonCrash builds a torn crash image and additionally poisons
	// lines the in-flight operation stored to.
	ModePoisonCrash
	// ModePoisonLive poisons lines on a cleanly unmounted image, modelling
	// media wear discovered at the next mount.
	ModePoisonLive
	modeCount
)

func (m FaultMode) String() string {
	switch m {
	case ModeTorn:
		return "torn"
	case ModePoisonCrash:
		return "poison+crash"
	case ModePoisonLive:
		return "poison-live"
	}
	return "?"
}

// FaultCampaignConfig tunes the campaign.
type FaultCampaignConfig struct {
	// Runs is the number of seeded runs (default 120).
	Runs int
	// DeviceSize for the scratch FS (default 64 MiB).
	DeviceSize int64
	// CPUs for the WineFS instance (default 2).
	CPUs int
	Seed uint64
}

func (c *FaultCampaignConfig) defaults() {
	if c.Runs == 0 {
		c.Runs = 120
	}
	if c.DeviceSize == 0 {
		c.DeviceSize = 64 << 20
	}
	if c.CPUs == 0 {
		c.CPUs = 2
	}
}

// FaultCampaignResult aggregates the campaign. Every run lands in exactly
// one outcome bucket or in Failures.
type FaultCampaignResult struct {
	Runs int
	// CleanRecoveries: mount succeeded un-degraded and the namespace matched
	// the atomicity oracle.
	CleanRecoveries int
	// EIOMounts: the mount itself failed with a clean EIO.
	EIOMounts int
	// Degraded: the mount fell back to read-only.
	Degraded int
	// Repaired counts EIO/degraded runs where the offline repair then
	// produced a clean, mountable image.
	Repaired int
	// DataEIOReads counts file reads that surfaced poison as EIO.
	DataEIOReads int
	// TierRuns counts runs that mounted with a slow second tier (every
	// other run): spill-on-allocation plus a migration pass after each
	// workload op, so tier-migration journal records sit in the torn-store
	// population like any other metadata update.
	TierRuns int
	// TierMigrations counts migration passes that actually moved extents
	// (and were therefore recorded as crashable units) — the coverage
	// check that tiered runs exercise migration rather than mounting an
	// idle tier.
	TierMigrations int
	// Failures are the runs that broke the ladder: a panic, a silent wrong
	// byte, a non-EIO error, or writes accepted while degraded.
	Failures []string
}

// OK reports whether the ladder held for every run.
func (r *FaultCampaignResult) OK() bool { return len(r.Failures) == 0 }

func (r *FaultCampaignResult) String() string {
	return fmt.Sprintf("%d runs (%d tiered, %d migration points): %d clean recoveries, %d EIO mounts, %d degraded, %d repaired, %d data reads EIO, %d failures",
		r.Runs, r.TierRuns, r.TierMigrations, r.CleanRecoveries, r.EIOMounts, r.Degraded, r.Repaired, r.DataEIOReads, len(r.Failures))
}

// RunFaultCampaign executes cfg.Runs seeded fault runs, cycling through the
// ACE seq-1 and seq-2 workloads.
//
// Runs are fully independent — each boots its own device, file system and
// sim contexts from nothing but (seed, mode, workload) — so they execute
// on host cores via sim.ParallelRunner. Every run accumulates into its own
// index slot and the slots merge in index order afterwards, making the
// aggregate bit-identical to the sequential loop's.
func RunFaultCampaign(cfg FaultCampaignConfig) *FaultCampaignResult {
	cfg.defaults()
	workloads := append(GenerateSeq1(), GenerateSeq2()...)
	perRun := make([]FaultCampaignResult, cfg.Runs)
	msgs := make([]string, cfg.Runs)
	var pr sim.ParallelRunner
	pr.Run(cfg.Runs, func(i int) {
		w := workloads[i%len(workloads)]
		seed := cfg.Seed + uint64(i)*0x9E3779B97F4A7C15
		// Rotate the mode by cycle so each workload meets every mode (the
		// workload count is a multiple of the mode count).
		mode := FaultMode((i + i/len(workloads)) % int(modeCount))
		// Every other run mounts tiered; 2 and the mode count 3 are
		// coprime, so each (mode, tiered) pair occurs for each workload.
		tiered := i%2 == 1
		if msg := guardRun(func() string {
			return faultRun(w, cfg, seed, mode, tiered, &perRun[i])
		}); msg != "" {
			msgs[i] = fmt.Sprintf("run %d (%s, %s, tiered=%v, seed %#x): %s", i, w.Name, mode, tiered, seed, msg)
		}
	})
	res := &FaultCampaignResult{}
	for i := range perRun {
		res.Runs++
		res.CleanRecoveries += perRun[i].CleanRecoveries
		res.EIOMounts += perRun[i].EIOMounts
		res.Degraded += perRun[i].Degraded
		res.Repaired += perRun[i].Repaired
		res.DataEIOReads += perRun[i].DataEIOReads
		res.TierRuns += perRun[i].TierRuns
		res.TierMigrations += perRun[i].TierMigrations
		if msgs[i] != "" {
			res.Failures = append(res.Failures, msgs[i])
		}
	}
	return res
}

// guardRun converts a panic anywhere in a run into a campaign failure —
// the one outcome the ladder forbids unconditionally.
func guardRun(f func() string) (msg string) {
	defer func() {
		if r := recover(); r != nil {
			msg = fmt.Sprintf("PANIC: %v\n%s", r, debug.Stack())
		}
	}()
	return f()
}

// faultRun performs one seeded run and classifies its outcome. It returns
// "" when the degradation ladder held and a failure description otherwise.
//
// A tiered run mounts the same workload over a PM device half-backed by a
// slow tier with water marks low enough that ordinary file writes spill,
// and interleaves a TierPass after every workload op, alternating between
// demotion-aggressive and promotion-friendly marks. Each pass is its own
// crashable unit, so the campaign tears migration transactions exactly
// like workload transactions. The slow device is snapshotted after every
// unit and rewound together with the PM image: slow writes are durable on
// completion, so a crash image from unit k must not see slow-tier writes
// from the units after it (a later spill may legitimately reuse blocks a
// committed promotion freed).
func faultRun(w Workload, cfg FaultCampaignConfig, seed uint64, mode FaultMode, tiered bool, res *FaultCampaignResult) string {
	rng := sim.NewRand(seed)
	ctx := sim.NewCtx(1, 0)
	dev := pmem.New(cfg.DeviceSize)
	defer dev.Release()
	var slow *tier.SlowDevice
	var topts *winefs.TierOptions
	var slowBlocks int64
	if tiered {
		slow = tier.NewSlow(tier.DefaultSlowConfig(cfg.DeviceSize / 2))
		defer slow.Release()
		// The ACE workloads write a few KiB against a pool of ~16k blocks,
		// so the marks must be effectively zero for any of it to spill:
		// high water under one block means every data allocation goes slow
		// and every aggressive pass demotes whatever lives in PM.
		topts = &winefs.TierOptions{Slow: slow, HighWater: 0.0001, LowWater: 0.00005, PromoteMin: 1}
		slowBlocks = slow.Size() / winefs.BlockSize
		res.TierRuns++
	}
	opts := winefs.Options{CPUs: cfg.CPUs, InodesPerCPU: 512, Tier: topts}
	fs, err := winefs.Mkfs(ctx, dev, opts)
	if err != nil {
		return fmt.Sprintf("mkfs: %v", err)
	}
	for _, o := range w.Setup {
		if err := apply(ctx, fs, o); err != nil {
			return fmt.Sprintf("setup %s: %v", o, err)
		}
	}

	// Replay the workload as a sequence of crashable units (ops, and on
	// tiered runs the migration passes between them), keeping per-unit
	// snapshots, traces and the before/after oracle states.
	type crashUnit struct {
		base      *pmem.Image
		slowAfter *pmem.Image // slow-tier contents after the unit; nil untiered
		trace     []pmem.Store
		pre, post State
	}
	var units []crashUnit
	prev := captureState(ctx, fs)
	record := func(f func() error) {
		base := dev.Snapshot()
		dev.StartTrace()
		err := f()
		trace := dev.StopTrace()
		cur := captureState(ctx, fs)
		if err == nil && len(trace) > 0 {
			u := crashUnit{base: base, trace: trace, pre: prev, post: cur}
			if slow != nil {
				u.slowAfter = slow.Snapshot()
			}
			units = append(units, u)
		}
		prev = cur
	}
	for k, o := range w.Ops {
		o := o
		record(func() error { return apply(ctx, fs, o) })
		if tiered {
			// Alternate marks, promotion first: setup and op writes spilled
			// under the aggressive mount marks and still carry the heat the
			// write gave them, so a relaxed pass pulls them up to PM — and
			// the aggressive pass after the next op pushes them back down.
			if k%2 == 0 {
				fs.SetTierWaterMarks(0.95, 0.85)
			} else {
				fs.SetTierWaterMarks(0.0001, 0.00005)
			}
			nUnits := len(units)
			record(func() error {
				_, err := fs.TierPass(ctx, winefs.TierPassOptions{MaxMigrateBlocks: 512})
				return err
			})
			if len(units) > nUnits {
				res.TierMigrations++
			}
		}
	}
	if len(units) == 0 {
		res.CleanRecoveries++ // nothing to injure; vacuous
		return ""
	}

	var img *pmem.Image
	var slowImg *pmem.Image
	var injured []pmem.Store // stores whose lines are poison candidates
	var oracle []State
	switch mode {
	case ModeTorn, ModePoisonCrash:
		u := units[rng.Intn(len(units))]
		maxEpoch := 0
		for _, s := range u.trace {
			if s.Epoch > maxEpoch {
				maxEpoch = s.Epoch
			}
		}
		e := rng.Intn(maxEpoch + 1)
		var durable []pmem.Store
		for _, s := range u.trace {
			if s.Epoch <= e {
				durable = append(durable, s)
				if s.Epoch == e {
					injured = append(injured, s)
				}
			}
		}
		keep := 0.2 + 0.6*rng.Float64()
		torn := pmem.TearStores(durable, e, keep, rng)
		img = u.base.Clone()
		img.Apply(torn)
		slowImg = u.slowAfter
		oracle = []State{u.pre, u.post}
	case ModePoisonLive:
		if err := fs.Unmount(ctx); err != nil {
			return fmt.Sprintf("unmount: %v", err)
		}
		img = dev.Snapshot()
		for i := range units {
			injured = append(injured, units[i].trace...)
		}
		if slow != nil {
			slowImg = slow.Snapshot()
		}
		oracle = []State{prev}
	}

	scratch := pmem.New(cfg.DeviceSize)
	defer scratch.Release()
	scratch.Restore(img)
	if slowImg != nil {
		// Rewind the slow tier to the crash unit's durable state; the live
		// fs is abandoned past this point, so restoring in place is safe.
		slow.Restore(slowImg)
	}
	if mode == ModePoisonCrash || mode == ModePoisonLive {
		// Pick poison targets byte-weighted across everything the workload
		// stored, so large data writes are hit as often as their footprint
		// deserves (store-uniform picking would drown them under the many
		// 64-byte journal entries).
		var total int64
		for _, s := range injured {
			total += int64(len(s.Data))
		}
		nPoison := 1 + rng.Intn(3)
		for p := 0; p < nPoison && total > 0; p++ {
			r := rng.Int63n(total)
			for _, s := range injured {
				if r < int64(len(s.Data)) {
					off := s.Off + r
					scratch.Poison(off/pmem.CacheLine*pmem.CacheLine, 1)
					break
				}
				r -= int64(len(s.Data))
			}
		}
	}

	// Recover and classify.
	rctx := sim.NewCtx(2, 0)
	rfs, err := winefs.Mount(rctx, scratch, opts)
	if err != nil {
		// Rung 2: the mount itself must fail with a clean EIO, nothing else.
		if !errors.Is(err, vfs.ErrIO) {
			return fmt.Sprintf("mount failed with non-EIO error: %v", err)
		}
		res.EIOMounts++
		return repairAndRemount(scratch, opts, slowBlocks, res)
	}
	if reason, degraded := rfs.Degraded(); degraded {
		// Rung 3: read-only fallback. Reads must keep working (no panic;
		// errors must be EIO) and every mutation must refuse cleanly.
		_ = captureState(rctx, rfs)
		if msg := readAllFiles(rctx, rfs, res); msg != "" {
			return fmt.Sprintf("degraded (%s): %s", reason, msg)
		}
		if err := rfs.Mkdir(rctx, "/.probe"); !errors.Is(err, vfs.ErrReadOnly) {
			return fmt.Sprintf("degraded (%s): mkdir returned %v, want ErrReadOnly", reason, err)
		}
		if _, err := rfs.Create(rctx, "/.probe2"); !errors.Is(err, vfs.ErrReadOnly) {
			return fmt.Sprintf("degraded (%s): create returned %v, want ErrReadOnly", reason, err)
		}
		res.Degraded++
		return repairAndRemount(scratch, opts, slowBlocks, res)
	}
	// Rung 1: transparent recovery. The namespace must match the atomicity
	// oracle and the image must pass fsck.
	got := captureState(rctx, rfs)
	match := false
	for _, want := range oracle {
		if got == want {
			match = true
			break
		}
	}
	if !match {
		return fmt.Sprintf("atomicity violated:\n got: %q\nwant one of: %q", got, oracle)
	}
	if rep := winefs.CheckTiered(scratch, slowBlocks); !rep.OK() {
		return fmt.Sprintf("clean mount but fsck: %s", rep.Errors[0])
	}
	// A transparent recovery must also rebuild the allocator exactly: the
	// invariant auditor reconciles caches, hole-pool promotion, StatFS and
	// the free/used tiling. (Degraded mounts are exempt — unreadable extent
	// records legitimately lose blocks from both sides of the ledger.)
	if err := rfs.Audit(rctx); err != nil {
		return fmt.Sprintf("clean recovery failed audit: %v", err)
	}
	if msg := readAllFiles(rctx, rfs, res); msg != "" {
		return msg
	}
	res.CleanRecoveries++
	return ""
}

// readAllFiles reads every file in full through the checked path. Reads may
// fail — but only with EIO — and bytes that do come back must be zero
// (every campaign workload writes zeros), so any nonzero byte is silent
// corruption.
func readAllFiles(ctx *sim.Ctx, fs vfs.FS, res *FaultCampaignResult) string {
	var walk func(dir string) string
	walk = func(dir string) string {
		ents, err := fs.ReadDir(ctx, dir)
		if err != nil {
			if errors.Is(err, vfs.ErrIO) {
				res.DataEIOReads++
				return ""
			}
			return fmt.Sprintf("readdir %s: non-EIO error %v", dir, err)
		}
		for _, e := range ents {
			p := dir + "/" + e.Name
			if dir == "/" {
				p = "/" + e.Name
			}
			if e.IsDir {
				if msg := walk(p); msg != "" {
					return msg
				}
				continue
			}
			f, err := fs.Open(ctx, p)
			if err != nil {
				if errors.Is(err, vfs.ErrIO) {
					res.DataEIOReads++
					continue
				}
				return fmt.Sprintf("open %s: non-EIO error %v", p, err)
			}
			fi, err := fs.Stat(ctx, p)
			if err != nil {
				continue
			}
			buf := make([]byte, 1<<16)
			for off := int64(0); off < fi.Size; off += int64(len(buf)) {
				n := fi.Size - off
				if n > int64(len(buf)) {
					n = int64(len(buf))
				}
				m, err := f.ReadAt(ctx, buf[:n], off)
				if err != nil {
					if errors.Is(err, vfs.ErrIO) {
						res.DataEIOReads++
						continue
					}
					return fmt.Sprintf("read %s@%d: non-EIO error %v", p, off, err)
				}
				for j := 0; j < m; j++ {
					if buf[j] != 0 {
						return fmt.Sprintf("SILENT CORRUPTION: %s@%d byte %d = %#x, want 0", p, off, j, buf[j])
					}
				}
			}
			f.Close(ctx)
		}
		return ""
	}
	return walk("/")
}

// repairAndRemount runs the offline repairing fsck on a copy of the injured
// image and requires it to produce a clean, mountable, un-degraded file
// system. A repair that cannot even read the superblock is the one accepted
// dead end (there is no backup superblock to recover from).
func repairAndRemount(scratch *pmem.Device, opts winefs.Options, slowBlocks int64, res *FaultCampaignResult) string {
	rep, err := winefs.RepairTiered(scratch, slowBlocks)
	if err != nil {
		if errors.Is(err, vfs.ErrIO) || isPmemErr(err) {
			return "" // superblock itself is gone; EIO is the honest end state
		}
		return fmt.Sprintf("repair failed: %v", err)
	}
	if !rep.Clean {
		return fmt.Sprintf("repair left inconsistencies: %v", rep.PostErrors)
	}
	ctx := sim.NewCtx(3, 0)
	rfs, err := winefs.Mount(ctx, scratch, opts)
	if err != nil {
		return fmt.Sprintf("post-repair mount failed: %v", err)
	}
	if reason, degraded := rfs.Degraded(); degraded {
		return fmt.Sprintf("post-repair mount degraded: %s", reason)
	}
	if err := rfs.Mkdir(ctx, "/.repaired"); err != nil {
		return fmt.Sprintf("post-repair write failed: %v", err)
	}
	if err := rfs.Audit(ctx); err != nil {
		return fmt.Sprintf("post-repair mount failed audit: %v", err)
	}
	res.Repaired++
	return ""
}

func isPmemErr(err error) bool {
	var me *pmem.MediaError
	var re *pmem.RangeError
	return errors.As(err, &me) || errors.As(err, &re)
}
