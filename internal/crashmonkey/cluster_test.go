package crashmonkey

import "testing"

// TestClusterCampaign runs the full replicated-winefsd fault campaign:
// 1000 seeded runs rotated across partition, replica-lag, torn-stream and
// mid-failover scenarios. The ladder per run: no panic → no silent
// divergence → convergence (with repair/resync where needed). Runs overlap
// on the host (they are dominated by heartbeat/retry wall-clock timers),
// which is what makes 1000 seeds affordable.
func TestClusterCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("cluster campaign is long; skipped with -short")
	}
	res := RunClusterCampaign(ClusterCampaignConfig{
		Runs: 1000,
		Seed: 0xC10C4,
		Logf: nil, // the campaign narrates enough via failures
	})
	t.Logf("campaign: %s", res)
	t.Logf("scenario runs: %v", res.ScenarioRuns)
	t.Logf("lag observed in %d replica-lag runs", res.LagObserved)

	if !res.OK() {
		for i, f := range res.Failures {
			if i >= 10 {
				t.Errorf("... and %d more failures", len(res.Failures)-i)
				break
			}
			t.Errorf("failure: %s", f)
		}
		t.Fatalf("%d/%d runs broke the ladder", len(res.Failures), res.Runs)
	}
	if res.SilentDivergences != 0 {
		t.Fatalf("%d silent divergences — the campaign's core invariant", res.SilentDivergences)
	}
	// The faults must actually bite: partitions leave the dead primary
	// ahead of the replicas (detected divergence), and torn streams must
	// produce CRC-caught bad records that resync repairs.
	if res.DivergencesDetected == 0 {
		t.Fatal("campaign detected zero divergences — partition scenario is not biting")
	}
	if res.BadRecords == 0 {
		t.Fatal("campaign saw zero bad records — torn-stream scenario is not biting")
	}
	if res.Resyncs == 0 {
		t.Fatal("campaign performed zero resyncs")
	}
	if res.Failovers == 0 {
		t.Fatal("campaign performed zero failovers")
	}
}

// TestClusterCampaignSmoke is the tier-1-friendly slice: one run of every
// scenario, still asserting the full ladder.
func TestClusterCampaignSmoke(t *testing.T) {
	res := RunClusterCampaign(ClusterCampaignConfig{
		Runs: 4,
		Seed: 0x5A0E,
	})
	t.Logf("smoke: %s", res)
	if !res.OK() {
		for _, f := range res.Failures {
			t.Errorf("failure: %s", f)
		}
		t.Fatalf("%d/%d smoke runs broke the ladder", len(res.Failures), res.Runs)
	}
	if res.SilentDivergences != 0 {
		t.Fatalf("%d silent divergences", res.SilentDivergences)
	}
}
