package crashmonkey

import (
	"errors"
	"testing"

	"repro/internal/pmem"
	"repro/internal/sim"
	"repro/internal/vfs"
	"repro/internal/winefs"
)

// TestFaultCampaign is the robustness headline: a thousand seeded
// workloads under poison and torn-write injection, and every single outcome
// must sit on the degradation ladder — transparent recovery, clean EIO, or
// read-only fallback. Zero panics, zero silently wrong bytes. The runs
// execute in parallel on host cores; the engine speedups are what let the
// campaign afford 1000 seeds in tier-1 time.
func TestFaultCampaign(t *testing.T) {
	if testing.Short() {
		t.Skip("fault campaign")
	}
	res := RunFaultCampaign(FaultCampaignConfig{Runs: 1000, Seed: 1})
	for i, f := range res.Failures {
		if i >= 5 {
			t.Errorf("... and %d more failures", len(res.Failures)-i)
			break
		}
		t.Errorf("%s", f)
	}
	if res.Runs < 100 {
		t.Fatalf("only %d runs", res.Runs)
	}
	// The campaign must actually exercise every rung, or the assertions
	// above are vacuous.
	if res.CleanRecoveries == 0 || res.Degraded == 0 {
		t.Fatalf("campaign did not cover the ladder: %s", res)
	}
	if res.DataEIOReads == 0 && res.EIOMounts == 0 {
		t.Fatalf("campaign never produced a clean EIO: %s", res)
	}
	// Half the runs mount with a slow tier and interleave migration passes;
	// a campaign where no pass ever moved an extent would be asserting
	// nothing about tier-migration crash consistency.
	if res.TierRuns == 0 || res.TierMigrations == 0 {
		t.Fatalf("campaign did not exercise tier migration: %s", res)
	}
	t.Logf("%s", res)
}

// TestFaultCampaignDeterministic: identical seeds must classify identically
// (the reproducibility contract of the fault plan).
func TestFaultCampaignDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("fault campaign")
	}
	a := RunFaultCampaign(FaultCampaignConfig{Runs: 12, Seed: 99})
	b := RunFaultCampaign(FaultCampaignConfig{Runs: 12, Seed: 99})
	if a.String() != b.String() {
		t.Fatalf("campaign not deterministic:\n a: %s\n b: %s", a, b)
	}
}

// TestRepairPoisonedJournalTail is the acceptance scenario from the issue:
// poison the tail of a journal holding an uncommitted transaction, verify
// the mount degrades (it cannot prove the tx boundary), then run the
// repairing fsck and require a mountable, oracle-consistent file system.
func TestRepairPoisonedJournalTail(t *testing.T) {
	ctx := sim.NewCtx(1, 0)
	dev := pmem.New(64 << 20)
	fs, err := winefs.Mkfs(ctx, dev, winefs.Options{CPUs: 1, InodesPerCPU: 512})
	if err != nil {
		t.Fatal(err)
	}
	// Build a small tree, then crash mid-create so the journal holds an
	// in-flight transaction.
	if err := fs.Mkdir(ctx, "/d"); err != nil {
		t.Fatal(err)
	}
	f, err := fs.Create(ctx, "/d/keep")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Append(ctx, make([]byte, 8192)); err != nil {
		t.Fatal(err)
	}
	before := captureState(ctx, fs)
	base := dev.Snapshot()
	dev.StartTrace()
	if _, err := fs.Create(ctx, "/d/inflight"); err != nil {
		t.Fatal(err)
	}
	trace := dev.StopTrace()
	after := captureState(ctx, fs)

	// Crash image: cut mid-operation, then poison the journal lines the
	// in-flight transaction wrote (the "journal tail").
	maxEpoch := 0
	for _, s := range trace {
		if s.Epoch > maxEpoch {
			maxEpoch = s.Epoch
		}
	}
	img := base.Clone()
	jlo, jhi := winefs.JournalRegion(dev, 0)
	var durable []pmem.Store
	var tail []pmem.Store
	for _, s := range trace {
		if s.Epoch < maxEpoch {
			durable = append(durable, s)
		}
		if s.Off >= jlo && s.Off < jhi {
			tail = append(tail, s)
		}
	}
	img.Apply(durable)
	if len(tail) == 0 {
		t.Fatal("create transaction wrote nothing to the journal")
	}
	scratch := pmem.New(64 << 20)
	scratch.Restore(img)
	for _, s := range tail {
		scratch.Poison(s.Off, int64(len(s.Data)))
	}

	// The mount must survive without panicking: either degraded (journal
	// unreadable) or failed with clean EIO.
	rctx := sim.NewCtx(2, 0)
	rfs, err := winefs.Mount(rctx, scratch, winefs.Options{CPUs: 1, InodesPerCPU: 512})
	if err != nil {
		if !errors.Is(err, vfs.ErrIO) {
			t.Fatalf("mount failed with non-EIO error: %v", err)
		}
	} else if _, degraded := rfs.Degraded(); !degraded {
		t.Fatal("mount with a poisoned journal tail was not degraded")
	}

	// Repair must clear the poisoned tail and yield a clean image.
	rep, err := winefs.Repair(scratch)
	if err != nil {
		t.Fatalf("repair: %v", err)
	}
	if !rep.Clean {
		t.Fatalf("repair left inconsistencies: %v", rep.PostErrors)
	}
	if len(scratch.PoisonedLines(jlo, jhi-jlo)) != 0 {
		t.Fatal("repair left poison in the journal region")
	}

	// Post-repair mount must be writable and oracle-consistent. With an
	// undo journal, losing the tail forfeits rollback: if the operation's
	// in-place writes were durable it persists (after-state); otherwise the
	// structural passes mend back to the before-state. Either boundary is
	// a legal atomic outcome — anything in between is not.
	mctx := sim.NewCtx(3, 0)
	mfs, err := winefs.Mount(mctx, scratch, winefs.Options{CPUs: 1, InodesPerCPU: 512})
	if err != nil {
		t.Fatalf("post-repair mount: %v", err)
	}
	if reason, degraded := mfs.Degraded(); degraded {
		t.Fatalf("post-repair mount degraded: %s", reason)
	}
	got := captureState(mctx, mfs)
	if got != before && got != after {
		t.Fatalf("post-repair namespace diverged:\n got: %q\n pre: %q\npost: %q", got, before, after)
	}
	if err := mfs.Mkdir(mctx, "/new"); err != nil {
		t.Fatalf("post-repair write: %v", err)
	}
	if rep := winefs.Check(scratch); !rep.OK() {
		t.Fatalf("post-repair fsck: %v", rep.Errors)
	}
}
