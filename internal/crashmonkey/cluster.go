// Cluster fault campaign: seeded runs against a replicated winefsd
// (internal/cluster), injecting replication partitions, replica lag, torn
// streams and mid-failover crashes. The ladder every run must hold:
//
//	no panic → no silent divergence → convergence
//
// "Silent divergence" is a replica whose image differs from the primary's
// while the replication engine reported nothing unusual (no degrade, no
// bad records, no gap, no resync, no failover). Divergence with a signal
// is expected — partitions open the documented degraded-mode window — and
// the Converge ladder (byte compare → logical compare → winefs.Repair →
// resync) must then bring every surviving image back to the primary's.
package crashmonkey

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/cluster"
	"repro/internal/fileserver"
	"repro/internal/sim"
	"repro/internal/vfs"
	"repro/internal/winefs"
	"repro/internal/workloads"
)

// ClusterScenario names one fault shape.
type ClusterScenario string

const (
	// ScenarioPartition: replication network cut mid-traffic, primary must
	// degrade (not block), then crash + failover + rejoin of the dead
	// primary heals the split brain.
	ScenarioPartition ClusterScenario = "partition"
	// ScenarioReplicaLag: one replica applies slowly (async mode); after
	// the stall clears, the cluster must converge with no intervention.
	ScenarioReplicaLag ClusterScenario = "replica-lag"
	// ScenarioTornStream: replication frames are bit-flipped in flight; the
	// CRC must catch every tear and resync must heal it.
	ScenarioTornStream ClusterScenario = "torn-stream"
	// ScenarioMidFailover: the primary is killed while ServerMix clients
	// are mid-operation; failover clients must finish without errors.
	ScenarioMidFailover ClusterScenario = "mid-failover"
)

var clusterScenarios = []ClusterScenario{
	ScenarioPartition, ScenarioReplicaLag, ScenarioTornStream, ScenarioMidFailover,
}

// ClusterCampaignConfig sizes the campaign.
type ClusterCampaignConfig struct {
	// Runs is the number of seeded runs (default 120), rotated across the
	// four scenarios.
	Runs int
	// DeviceSize per node (default 64 MiB).
	DeviceSize int64
	// Replicas behind each primary (default 2).
	Replicas int
	Seed     uint64
	// Logf (nil for silent) narrates runs.
	Logf func(string, ...any)
}

func (c *ClusterCampaignConfig) defaults() {
	if c.Runs == 0 {
		c.Runs = 120
	}
	if c.DeviceSize == 0 {
		c.DeviceSize = 64 << 20
	}
	if c.Replicas == 0 {
		c.Replicas = 2
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
}

// ClusterCampaignResult aggregates the campaign.
type ClusterCampaignResult struct {
	Runs         int
	ScenarioRuns map[ClusterScenario]int
	// DivergencesDetected counts images the checker found differing from
	// the primary — all of them must carry an engine signal.
	DivergencesDetected int
	// SilentDivergences counts divergences with no engine signal; the
	// campaign's core invariant is that this stays zero.
	SilentDivergences int
	// Converged tallies Converge outcomes (clean/logical/repair/resync).
	Converged map[cluster.ConvergeOutcome]int
	// BadRecords is the total torn/corrupt records caught by replica CRCs.
	BadRecords int64
	// Resyncs is the total full-image resyncs across all runs.
	Resyncs int64
	// Failovers is the total primary handovers performed.
	Failovers int64
	// LagObserved counts replica-lag runs where the laggard measurably
	// trailed mid-run.
	LagObserved int
	// Failures lists runs that broke the ladder.
	Failures []string
}

// OK reports whether every run held the ladder.
func (r *ClusterCampaignResult) OK() bool { return len(r.Failures) == 0 }

func (r *ClusterCampaignResult) String() string {
	return fmt.Sprintf("%d runs: %d divergences detected (%d silent), %d resyncs, %d bad records, %d failovers, converged %v, %d failures",
		r.Runs, r.DivergencesDetected, r.SilentDivergences, r.Resyncs, r.BadRecords, r.Failovers, r.Converged, len(r.Failures))
}

// RunClusterCampaign executes cfg.Runs seeded runs rotating scenarios.
//
// Each run boots its own cluster (nodes, devices, replication links) from
// nothing but its seed, so runs execute concurrently via sim.ParallelRunner
// with per-index result slots merged in index order afterwards. These runs
// are dominated by wall-clock timers (heartbeats, retry backoff, ack
// timeouts), so overlapping them shortens the campaign even on one host
// core. cfg.Logf, the only shared sink, must tolerate concurrent calls.
func RunClusterCampaign(cfg ClusterCampaignConfig) *ClusterCampaignResult {
	cfg.defaults()
	perRun := make([]ClusterCampaignResult, cfg.Runs)
	msgs := make([]string, cfg.Runs)
	pr := sim.ParallelRunner{Workers: clusterCampaignWorkers}
	pr.Run(cfg.Runs, func(i int) {
		scenario := clusterScenarios[i%len(clusterScenarios)]
		seed := cfg.Seed + uint64(i)*0x9E3779B97F4A7C15
		r := &perRun[i]
		r.ScenarioRuns = map[ClusterScenario]int{scenario: 1}
		r.Converged = make(map[cluster.ConvergeOutcome]int)
		if msg := guardRun(func() string {
			return clusterRun(cfg, scenario, seed, r)
		}); msg != "" {
			msgs[i] = fmt.Sprintf("run %d (%s, seed %#x): %s", i, scenario, seed, msg)
		}
	})
	// Convergence deadlines are wall-clock, and the parallel pass
	// oversubscribes the host on purpose (8 runs per core is the
	// throughput sweet spot for timer-bound runs). Under that load a
	// heartbeat or resync goroutine can starve past its deadline with
	// nothing actually wrong, so every failed run gets one sequential
	// rerun on an uncontended host before it counts: a scheduling
	// artifact passes the rerun, a genuinely broken seed fails twice.
	for i := range msgs {
		if msgs[i] == "" {
			continue
		}
		scenario := clusterScenarios[i%len(clusterScenarios)]
		seed := cfg.Seed + uint64(i)*0x9E3779B97F4A7C15
		cfg.Logf("retrying starved run %d sequentially: %s", i, msgs[i])
		r := &perRun[i]
		*r = ClusterCampaignResult{
			ScenarioRuns: map[ClusterScenario]int{scenario: 1},
			Converged:    make(map[cluster.ConvergeOutcome]int),
		}
		if msg := guardRun(func() string {
			return clusterRun(cfg, scenario, seed, r)
		}); msg != "" {
			msgs[i] = fmt.Sprintf("run %d (%s, seed %#x, failed twice): %s", i, scenario, seed, msg)
		} else {
			msgs[i] = ""
		}
	}
	res := &ClusterCampaignResult{
		ScenarioRuns: make(map[ClusterScenario]int),
		Converged:    make(map[cluster.ConvergeOutcome]int),
	}
	for i := range perRun {
		r := &perRun[i]
		res.Runs++
		for s, n := range r.ScenarioRuns {
			res.ScenarioRuns[s] += n
		}
		for o, n := range r.Converged {
			res.Converged[o] += n
		}
		res.DivergencesDetected += r.DivergencesDetected
		res.SilentDivergences += r.SilentDivergences
		res.BadRecords += r.BadRecords
		res.Resyncs += r.Resyncs
		res.Failovers += r.Failovers
		res.LagObserved += r.LagObserved
		if msgs[i] != "" {
			res.Failures = append(res.Failures, msgs[i])
		}
	}
	return res
}

// clusterCampaignWorkers bounds concurrent cluster runs: each run hosts
// several nodes' worth of devices, servers and replication goroutines, so
// the cap trades campaign wall-clock (runs are timer-bound, not CPU-bound)
// against peak host memory.
const clusterCampaignWorkers = 8

// clusterRun performs one seeded scenario run; "" means the ladder held.
func clusterRun(cfg ClusterCampaignConfig, scenario ClusterScenario, seed uint64, res *ClusterCampaignResult) string {
	rng := sim.NewRand(seed)
	ctx := sim.NewCtx(1, 0)
	fsOpts := winefs.Options{CPUs: 2}
	rcfg := cluster.ReplicatorConfig{
		// Sync for the scenarios that exercise the durability wait;
		// replica-lag and torn-stream run async so the stream itself (not
		// the client) absorbs the fault.
		Sync:           scenario == ScenarioPartition || scenario == ScenarioMidFailover,
		SyncTimeout:    40 * time.Millisecond,
		AckTimeout:     250 * time.Millisecond,
		HeartbeatEvery: 20 * time.Millisecond,
		RetryMin:       2 * time.Millisecond,
		RetryMax:       25 * time.Millisecond,
		DegradeAfter:   3,
		Seed:           seed,
	}
	ccfg := cluster.Config{
		Replicas:   cfg.Replicas,
		DeviceSize: cfg.DeviceSize,
		FSOpts:     fsOpts,
		Repl:       rcfg,
		Logf:       cfg.Logf,
	}
	var torn *tornWrapper
	if scenario == ScenarioTornStream {
		torn = &tornWrapper{rng: sim.NewRand(seed ^ 0xDEAD), budget: 3}
		ccfg.WrapReplConn = torn.wrap
	}
	c, err := cluster.New(ctx, ccfg)
	if err != nil {
		return fmt.Sprintf("cluster: %v", err)
	}
	defer c.Shutdown()

	switch scenario {
	case ScenarioPartition:
		return runPartition(ctx, c, rng, fsOpts, res)
	case ScenarioReplicaLag:
		return runReplicaLag(ctx, c, rng, res)
	case ScenarioTornStream:
		return runTornStream(ctx, c, rng, res)
	case ScenarioMidFailover:
		return runMidFailover(ctx, c, rng, fsOpts, seed, res)
	}
	return fmt.Sprintf("unknown scenario %q", scenario)
}

// campaignWrite creates nfiles seeded files through fs (create, append,
// fsync, close).
func campaignWrite(ctx *sim.Ctx, fs vfs.FS, rng *sim.Rand, tag string, nfiles int) error {
	for i := 0; i < nfiles; i++ {
		path := fmt.Sprintf("/%s-%02d", tag, i)
		f, err := fs.Create(ctx, path)
		if err != nil {
			return fmt.Errorf("create %s: %w", path, err)
		}
		data := make([]byte, 1024+rng.Intn(8*1024))
		for j := range data {
			data[j] = byte(rng.Intn(256))
		}
		if _, err := f.Append(ctx, data); err != nil {
			return fmt.Errorf("append %s: %w", path, err)
		}
		if err := f.Fsync(ctx); err != nil {
			return fmt.Errorf("fsync %s: %w", path, err)
		}
		if err := f.Close(ctx); err != nil {
			return fmt.Errorf("close %s: %w", path, err)
		}
	}
	return nil
}

// harvest folds a finished cluster's engine counters into the campaign
// totals and reports whether any anomaly signal fired (the "loud" bit that
// distinguishes expected divergence from silent divergence).
func harvest(c *cluster.Cluster, res *ClusterCampaignResult) (anomalies bool) {
	st := c.Stats()
	res.Resyncs += st.Repl.Resyncs
	res.Failovers += st.Failovers
	if st.Repl.Degrades > 0 || st.Repl.RingOverruns > 0 || st.Repl.SyncTimeouts > 0 || st.Failovers > 0 {
		anomalies = true
	}
	for _, rs := range st.ReplicaSide {
		res.BadRecords += rs.BadRecords
		if rs.BadRecords > 0 || rs.Gaps > 0 || rs.Rejects > 0 {
			anomalies = true
		}
	}
	// Resyncs beyond the per-link baseline are repair actions, not silence.
	if st.Repl.Resyncs > int64(len(st.Repl.Links)) {
		anomalies = true
	}
	return anomalies
}

// runPartition cuts replication mid-traffic, requires degraded-mode
// serving, then kills the primary, fails over, rejoins the dead node and
// requires full convergence.
func runPartition(ctx *sim.Ctx, c *cluster.Cluster, rng *sim.Rand, fsOpts winefs.Options, res *ClusterCampaignResult) string {
	conn, err := c.DialPrimary()
	if err != nil {
		return fmt.Sprintf("dial: %v", err)
	}
	cli, err := fileserver.Dial(conn)
	if err != nil {
		return fmt.Sprintf("handshake: %v", err)
	}
	if err := campaignWrite(ctx, cli, rng, "pre", 2); err != nil {
		return fmt.Sprintf("pre-partition write: %v", err)
	}
	if !c.AwaitConverged(5 * time.Second) {
		return "replicas never converged before the partition"
	}

	c.Partition(true)
	// The primary must keep serving writes — degraded, never blocked.
	if err := campaignWrite(ctx, cli, rng, "cut", 2); err != nil {
		return fmt.Sprintf("write during partition: %v", err)
	}
	repl, _ := c.Primary()
	if _, degraded := repl.Degraded(); !degraded {
		return "primary not degraded during partition"
	}
	cli.Close()

	// Crash the degraded primary and promote a (stale) replica: the
	// partition window's writes are the divergence the checker must see.
	deadName := c.PrimaryName()
	deadDev := c.KillPrimary()
	c.Partition(false)
	if err := c.FailOver(ctx); err != nil {
		return fmt.Sprintf("failover: %v", err)
	}
	// The dead primary holds writes the replicas never saw — the checker
	// must detect that divergence. It is never silent here: the partition
	// forced degrades and a failover, both loud signals.
	rep := cluster.Converge(ctx, c.PrimaryDevice(), deadDev, fsOpts)
	res.Converged[rep.Outcome]++
	if rep.Detected {
		res.DivergencesDetected++
		c.NoteDivergence(1)
	}
	// Heal the split brain: the dead ex-primary rejoins as a replica and
	// must resync to the new primary's image.
	if err := c.RejoinDead(deadName); err != nil {
		return fmt.Sprintf("rejoin: %v", err)
	}
	if !c.AwaitConverged(10 * time.Second) {
		return "cluster never reconverged after partition + failover + rejoin"
	}
	harvest(c, res)
	if _, fs := c.Primary(); fs != nil {
		if err := fs.Audit(ctx); err != nil {
			return fmt.Sprintf("post-failover audit: %v", err)
		}
	}
	return ""
}

// runReplicaLag slows one replica's applier in async mode; after the stall
// clears the cluster must converge by itself.
func runReplicaLag(ctx *sim.Ctx, c *cluster.Cluster, rng *sim.Rand, res *ClusterCampaignResult) string {
	reps := c.Replicas()
	laggard := reps[rng.Intn(len(reps))]
	laggard.SetApplyDelay(time.Duration(2+rng.Intn(8)) * time.Millisecond)

	conn, err := c.DialPrimary()
	if err != nil {
		return fmt.Sprintf("dial: %v", err)
	}
	cli, err := fileserver.Dial(conn)
	if err != nil {
		return fmt.Sprintf("handshake: %v", err)
	}
	defer cli.Close()
	if err := campaignWrite(ctx, cli, rng, "lag", 5); err != nil {
		return fmt.Sprintf("write: %v", err)
	}
	repl, _ := c.Primary()
	for _, l := range repl.Stats().Links {
		if l.Name == laggard.Name() && l.Lag > 0 {
			res.LagObserved++
			break
		}
	}
	laggard.SetApplyDelay(0)
	if !c.AwaitConverged(10 * time.Second) {
		return "laggard never caught up after the stall cleared"
	}
	harvest(c, res)
	return ""
}

// runTornStream writes through a bit-flipping replication transport; the
// record CRCs must catch the tears and resync must heal every replica.
func runTornStream(ctx *sim.Ctx, c *cluster.Cluster, rng *sim.Rand, res *ClusterCampaignResult) string {
	conn, err := c.DialPrimary()
	if err != nil {
		return fmt.Sprintf("dial: %v", err)
	}
	cli, err := fileserver.Dial(conn)
	if err != nil {
		return fmt.Sprintf("handshake: %v", err)
	}
	defer cli.Close()
	if err := campaignWrite(ctx, cli, rng, "torn", 5); err != nil {
		return fmt.Sprintf("write: %v", err)
	}
	if !c.AwaitConverged(15 * time.Second) {
		return "replicas never converged through the torn stream"
	}
	harvest(c, res)
	return ""
}

// runMidFailover kills the primary while ServerMix clients are mid-flight;
// the failover clients must complete every operation, and every surviving
// image must converge on the new primary.
func runMidFailover(ctx *sim.Ctx, c *cluster.Cluster, rng *sim.Rand, fsOpts winefs.Options, seed uint64, res *ClusterCampaignResult) string {
	// Let the baseline resyncs finish before arming the killer: only an
	// in-sync replica is a promotion candidate (as in real operations), so
	// a kill during bootstrap would have nothing valid to promote.
	if !c.AwaitConverged(5 * time.Second) {
		return "replicas never finished the baseline resync"
	}
	const clients = 2
	errs := make([]error, clients)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			cctx := sim.NewCtx(300+i, 0)
			// The initial dial can itself land inside the failover window
			// (DialFailover only retries once connected) — ride it out.
			var fc *cluster.FailoverClient
			var err error
			for attempt := 0; attempt < 200; attempt++ {
				fc, err = cluster.DialFailover(c.DialPrimary, cluster.FailoverConfig{})
				if err == nil {
					break
				}
				time.Sleep(5 * time.Millisecond)
			}
			if err != nil {
				errs[i] = fmt.Errorf("dial: %w", err)
				return
			}
			_, err = workloads.ServerMixClient(cctx, fc, i, workloads.ServerMixConfig{
				Ops: 8, MeanFileKB: 4, Seed: seed + uint64(i),
			})
			errs[i] = err
		}(i)
	}

	time.Sleep(time.Duration(1+rng.Intn(12)) * time.Millisecond)
	deadName := c.PrimaryName()
	deadDev := c.KillPrimary()
	fctx := sim.NewCtx(2, 0)
	if err := c.FailOver(fctx); err != nil {
		return fmt.Sprintf("failover: %v", err)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Sprintf("client %d failed across failover: %v", i, err)
		}
	}

	if !c.AwaitConverged(10 * time.Second) {
		return "replicas never converged on the new primary"
	}
	// harvest sees st.Failovers > 0 (we just failed over), so a detected
	// divergence on the dead primary's image is loud, never silent.
	anomalies := harvest(c, res)
	rep := cluster.Converge(ctx, c.PrimaryDevice(), deadDev, fsOpts)
	res.Converged[rep.Outcome]++
	if rep.Detected {
		res.DivergencesDetected++
		c.NoteDivergence(1)
		if !anomalies {
			res.SilentDivergences++
			return fmt.Sprintf("silent divergence on dead primary %s: %v", deadName, rep.Log)
		}
	}
	if _, fs := c.Primary(); fs != nil {
		if err := fs.Audit(ctx); err != nil {
			return fmt.Sprintf("post-failover audit: %v", err)
		}
	}
	return ""
}

// tornWrapper wraps primary-side replication connections with a seeded
// bit-flipper. Only frames large enough to be record batches are touched
// (control frames stay intact so the link can keep negotiating), and the
// budget bounds total corruption so runs terminate.
type tornWrapper struct {
	mu     sync.Mutex
	rng    *sim.Rand
	budget int
}

func (t *tornWrapper) wrap(replica string, c fileserver.Conn) fileserver.Conn {
	return &tornConn{Conn: c, w: t}
}

type tornConn struct {
	fileserver.Conn
	w *tornWrapper
}

func (c *tornConn) Write(p []byte) (int, error) {
	c.w.mu.Lock()
	corrupt := c.w.budget > 0 && len(p) > 64 && c.w.rng.Intn(3) == 0
	if corrupt {
		c.w.budget--
		q := append([]byte(nil), p...)
		q[c.w.rng.Intn(len(q))] ^= byte(1 << uint(c.w.rng.Intn(8)))
		c.w.mu.Unlock()
		return c.Conn.Write(q)
	}
	c.w.mu.Unlock()
	return c.Conn.Write(p)
}
