package trace

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestNilTracerIsDisabled(t *testing.T) {
	var tr *Tracer
	ctx := tr.NewContext(5)
	if ctx != nil {
		t.Fatal("nil tracer handed out a live context")
	}
	sp := ctx.Start("op", 100)
	if sp != nil {
		t.Fatal("nil context opened a span")
	}
	sp.SetAttr("k", "v") // must not panic
	ctx.End(sp, 200)     // must not panic
	if ctx.Depth() != 0 {
		t.Fatal("nil context has depth")
	}
	tr.SetSlowLog(&bytes.Buffer{}, 1)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestSpanNestingAndEmitOrder(t *testing.T) {
	sink := NewCollect()
	tr := New(sink)
	ctx := tr.NewContext(9001)

	root := ctx.Start("rpc.create", 1000)
	child := ctx.Start("journal.commit", 1200)
	grand := ctx.Start("pmem.zero", 1300)
	ctx.End(grand, 1400)
	ctx.End(child, 1600)
	if ctx.Depth() != 1 {
		t.Fatalf("depth = %d, want 1", ctx.Depth())
	}
	root.SetAttr("path", "/a")
	ctx.End(root, 2000)

	spans := sink.Spans()
	if len(spans) != 3 {
		t.Fatalf("emitted %d spans", len(spans))
	}
	// Completion order: leaf first.
	if spans[0].Name != "pmem.zero" || spans[2].Name != "rpc.create" {
		t.Fatalf("order: %s, %s, %s", spans[0].Name, spans[1].Name, spans[2].Name)
	}
	if spans[0].ParentID != spans[1].ID || spans[1].ParentID != spans[2].ID {
		t.Fatal("parent links broken")
	}
	if spans[2].ParentID != 0 {
		t.Fatalf("root has parent %d", spans[2].ParentID)
	}
	if spans[2].DurNS != 1000 || spans[2].StartNS != 1000 || spans[2].EndNS != 2000 {
		t.Fatalf("root timing: %+v", spans[2])
	}
	if spans[2].Attrs["path"] != "/a" {
		t.Fatalf("attrs: %+v", spans[2].Attrs)
	}
	if spans[2].Thread != 9001 {
		t.Fatalf("thread = %d", spans[2].Thread)
	}
}

func TestEndUnwindsLeakedChildren(t *testing.T) {
	tr := New(NewCollect())
	ctx := tr.NewContext(1)
	root := ctx.Start("outer", 0)
	ctx.Start("leaked", 10) // never ended
	ctx.End(root, 100)
	if ctx.Depth() != 0 {
		t.Fatalf("depth = %d after unwinding, want 0", ctx.Depth())
	}
}

func TestJSONLSink(t *testing.T) {
	var buf bytes.Buffer
	tr := New(NewJSONL(&buf))
	ctx := tr.NewContext(3)
	sp := ctx.Start("winefs.write", 500)
	sp.Mark = Breakdown{CopyNS: 100}
	sp.Cost = Breakdown{CopyNS: 40, JournalNS: 7}
	ctx.End(sp, 900)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	sc := bufio.NewScanner(&buf)
	if !sc.Scan() {
		t.Fatal("no JSONL line")
	}
	var got Span
	if err := json.Unmarshal(sc.Bytes(), &got); err != nil {
		t.Fatalf("bad JSONL: %v", err)
	}
	if got.Name != "winefs.write" || got.DurNS != 400 || got.Cost.CopyNS != 40 || got.Cost.JournalNS != 7 {
		t.Fatalf("round-trip: %+v", got)
	}
	// Mark is scratch space and must not leak into the wire format.
	if strings.Contains(buf.String(), "Mark") {
		t.Fatal("Mark serialized")
	}
}

func TestChromeSinkDocument(t *testing.T) {
	var buf bytes.Buffer
	sink := NewChrome(&buf)
	tr := New(sink)
	ctx := tr.NewContext(42)
	sp := ctx.Start("rpc.read", 2_000)
	sp.SetAttr("status", "ok")
	sp.Cost = Breakdown{SyscallNS: 120}
	ctx.End(sp, 5_000)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}

	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			TS   float64        `json:"ts"`
			Dur  float64        `json:"dur"`
			TID  int            `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("chrome doc does not parse: %v", err)
	}
	if len(doc.TraceEvents) != 1 {
		t.Fatalf("events = %d", len(doc.TraceEvents))
	}
	ev := doc.TraceEvents[0]
	if ev.Name != "rpc.read" || ev.Ph != "X" || ev.TID != 42 {
		t.Fatalf("event: %+v", ev)
	}
	if ev.TS != 2.0 || ev.Dur != 3.0 { // ns → µs
		t.Fatalf("timing: ts=%v dur=%v", ev.TS, ev.Dur)
	}
	if ev.Args["status"] != "ok" || ev.Args["syscall_ns"] != float64(120) {
		t.Fatalf("args: %+v", ev.Args)
	}
}

func TestChromeSinkEmptyTraceIsLoadable(t *testing.T) {
	var buf bytes.Buffer
	tr := New(NewChrome(&buf))
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.TraceEvents == nil {
		t.Fatal("traceEvents is null, want []")
	}
}

func TestSlowOpLog(t *testing.T) {
	var slow bytes.Buffer
	tr := New(NewCollect())
	tr.SetSlowLog(&slow, 1000)
	ctx := tr.NewContext(7)

	fast := ctx.Start("rpc.stat", 0)
	ctx.End(fast, 500)
	op := ctx.Start("rpc.write", 1000)
	inner := ctx.Start("journal.commit", 1100)
	ctx.End(inner, 9000) // long child span: must NOT log (not a root)
	op.Cost = Breakdown{JournalNS: 7900}
	ctx.End(op, 10_000)

	out := slow.String()
	if strings.Contains(out, "rpc.stat") {
		t.Fatalf("fast op logged: %q", out)
	}
	if strings.Contains(out, "journal.commit") {
		t.Fatalf("non-root span logged: %q", out)
	}
	if !strings.Contains(out, "SLOW rpc.write") || !strings.Contains(out, "dur=9000ns") {
		t.Fatalf("slow root op missing: %q", out)
	}
	if !strings.Contains(out, "journal=7900") {
		t.Fatalf("breakdown missing: %q", out)
	}
}

func TestBreakdownSub(t *testing.T) {
	a := Breakdown{SyscallNS: 10, LockWaitNS: 20, JournalNS: 30, CopyNS: 40, FaultNS: 50, ZeroNS: 60}
	b := Breakdown{SyscallNS: 1, LockWaitNS: 2, JournalNS: 3, CopyNS: 4, FaultNS: 5, ZeroNS: 6}
	d := a.Sub(b)
	want := Breakdown{SyscallNS: 9, LockWaitNS: 18, JournalNS: 27, CopyNS: 36, FaultNS: 45, ZeroNS: 54}
	if d != want {
		t.Fatalf("Sub = %+v", d)
	}
}
