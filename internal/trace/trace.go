// Package trace provides structured per-operation spans over the simulator's
// virtual clock. A Span records a named interval of virtual time plus a
// Breakdown of where that time went (syscall entry, lock wait, journal, data
// copy, fault and zero-fill work), and spans nest into a tree: the fileserver
// opens a root span per request, the filesystem opens child spans for journal
// commits, the MMU for fault handling, the device for bulk zeroing.
//
// The package deliberately imports only the standard library — the simulator
// (internal/sim) imports trace, never the reverse — and records nothing by
// itself: the caller supplies both timestamps and breakdowns, so tracing can
// never advance the virtual clock or perturb the numbers it observes. A nil
// *Tracer (and the nil *Context it hands out) is the disabled state; every
// method is nil-safe and the enabled check is a single pointer test.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
)

// Breakdown attributes a span's virtual time to the major cost centers the
// paper's figures are built from. All values are virtual nanoseconds.
// Components are informational and may overlap (JournalNS is elapsed time
// inside journal transaction machinery, which includes the PM traffic of
// the entries themselves, also counted by CopyNS); they need not sum to
// the span's duration.
type Breakdown struct {
	SyscallNS  int64 `json:"syscall_ns,omitempty"`
	LockWaitNS int64 `json:"lock_wait_ns,omitempty"`
	JournalNS  int64 `json:"journal_ns,omitempty"`
	CopyNS     int64 `json:"copy_ns,omitempty"`
	FaultNS    int64 `json:"fault_ns,omitempty"`
	ZeroNS     int64 `json:"zero_ns,omitempty"`
}

// Sub returns b - o, the cost accrued between two counter snapshots.
func (b Breakdown) Sub(o Breakdown) Breakdown {
	return Breakdown{
		SyscallNS:  b.SyscallNS - o.SyscallNS,
		LockWaitNS: b.LockWaitNS - o.LockWaitNS,
		JournalNS:  b.JournalNS - o.JournalNS,
		CopyNS:     b.CopyNS - o.CopyNS,
		FaultNS:    b.FaultNS - o.FaultNS,
		ZeroNS:     b.ZeroNS - o.ZeroNS,
	}
}

// Span is one traced operation. Spans are created by Context.Start and
// sealed by Context.End; between the two the owner may attach attributes.
type Span struct {
	ID       uint64            `json:"id"`
	ParentID uint64            `json:"parent,omitempty"`
	Name     string            `json:"name"`
	Thread   int               `json:"thread"`
	StartNS  int64             `json:"start_ns"`
	EndNS    int64             `json:"end_ns"`
	DurNS    int64             `json:"dur_ns"`
	Attrs    map[string]string `json:"attrs,omitempty"`
	Cost     Breakdown         `json:"breakdown"`

	// Mark is scratch space for the span's owner: the simulator stores the
	// counter snapshot taken at Start here and diffs it at End to produce
	// Cost. It never appears in emitted output.
	Mark Breakdown `json:"-"`
}

// SetAttr attaches a key/value annotation to the span. Nil-safe.
func (s *Span) SetAttr(k, v string) {
	if s == nil {
		return
	}
	if s.Attrs == nil {
		s.Attrs = make(map[string]string, 4)
	}
	s.Attrs[k] = v
}

// Sink receives completed spans. Emit is called with the span fully sealed
// (EndNS, DurNS and Cost populated); implementations must be safe for
// concurrent use, as server sessions trace from independent goroutines.
type Sink interface {
	Emit(sp *Span)
	Close() error
}

// NopSink discards every span. Use it when only the slow-op log is wanted:
// trace.New(trace.NopSink{}) with SetSlowLog keeps span bookkeeping on and
// the per-span emission cost at zero.
type NopSink struct{}

// Emit discards sp.
func (NopSink) Emit(sp *Span) {}

// Close is a no-op.
func (NopSink) Close() error { return nil }

// Tracer fans completed spans out to a sink and, optionally, a slow-op log.
// One Tracer serves a whole process; per-thread state lives in the Contexts
// it hands out.
type Tracer struct {
	sink   Sink
	nextID atomic.Uint64

	slowMu sync.Mutex
	slowW  io.Writer
	slowNS int64
}

// New returns a Tracer emitting into sink. A nil receiver anywhere in the
// API means tracing is disabled.
func New(sink Sink) *Tracer {
	return &Tracer{sink: sink}
}

// SetSlowLog arranges for every completed root span whose duration is at
// least thresholdNS virtual nanoseconds to be logged, one line per op, to w.
func (t *Tracer) SetSlowLog(w io.Writer, thresholdNS int64) {
	if t == nil {
		return
	}
	t.slowMu.Lock()
	t.slowW, t.slowNS = w, thresholdNS
	t.slowMu.Unlock()
}

// NewContext returns the per-thread tracing context for a simulated thread.
// Returns nil (the disabled context) on a nil Tracer.
func (t *Tracer) NewContext(thread int) *Context {
	if t == nil {
		return nil
	}
	return &Context{t: t, thread: thread}
}

// Close flushes and closes the underlying sink.
func (t *Tracer) Close() error {
	if t == nil || t.sink == nil {
		return nil
	}
	return t.sink.Close()
}

func (t *Tracer) emit(sp *Span, root bool) {
	if t.sink != nil {
		t.sink.Emit(sp)
	}
	if !root {
		return
	}
	t.slowMu.Lock()
	w, slow := t.slowW, t.slowNS
	t.slowMu.Unlock()
	if w != nil && sp.DurNS >= slow {
		fmt.Fprintf(w, "SLOW %s thread=%d dur=%dns syscall=%d lock=%d journal=%d copy=%d fault=%d zero=%d\n",
			sp.Name, sp.Thread, sp.DurNS,
			sp.Cost.SyscallNS, sp.Cost.LockWaitNS, sp.Cost.JournalNS,
			sp.Cost.CopyNS, sp.Cost.FaultNS, sp.Cost.ZeroNS)
	}
}

// Context is the per-thread span stack. It is owned by a single simulated
// thread and is not safe for concurrent use — exactly like the sim.Ctx it
// rides on. The nil Context is valid and does nothing.
type Context struct {
	t      *Tracer
	thread int
	stack  []*Span
}

// Start opens a span at virtual time nowNS, nested under the thread's
// current span if one is open. Returns nil when tracing is disabled.
func (c *Context) Start(name string, nowNS int64) *Span {
	if c == nil {
		return nil
	}
	sp := &Span{
		ID:      c.t.nextID.Add(1),
		Name:    name,
		Thread:  c.thread,
		StartNS: nowNS,
	}
	if n := len(c.stack); n > 0 {
		sp.ParentID = c.stack[n-1].ID
	}
	c.stack = append(c.stack, sp)
	return sp
}

// End seals sp at virtual time nowNS and emits it. Spans must end in LIFO
// order; End unwinds the stack to sp so a leaked child cannot wedge the
// thread's stack. Nil-safe in both receiver and span.
func (c *Context) End(sp *Span, nowNS int64) {
	if c == nil || sp == nil {
		return
	}
	for n := len(c.stack); n > 0; n = len(c.stack) {
		top := c.stack[n-1]
		c.stack = c.stack[:n-1]
		if top == sp {
			break
		}
	}
	sp.EndNS = nowNS
	sp.DurNS = nowNS - sp.StartNS
	c.t.emit(sp, len(c.stack) == 0)
}

// Depth reports how many spans are currently open on this thread.
func (c *Context) Depth() int {
	if c == nil {
		return 0
	}
	return len(c.stack)
}

// JSONLSink writes one JSON object per completed span, newline-delimited,
// in completion order (children before parents).
type JSONLSink struct {
	mu  sync.Mutex
	w   io.Writer
	enc *json.Encoder
	err error
}

// NewJSONL returns a sink writing JSONL spans to w.
func NewJSONL(w io.Writer) *JSONLSink {
	return &JSONLSink{w: w, enc: json.NewEncoder(w)}
}

// Emit writes the span as one JSON line.
func (s *JSONLSink) Emit(sp *Span) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err == nil {
		s.err = s.enc.Encode(sp)
	}
}

// Close reports the first write error, if any, and closes w when it is a
// Closer.
func (s *JSONLSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c, ok := s.w.(io.Closer); ok {
		if cerr := c.Close(); s.err == nil {
			s.err = cerr
		}
	}
	return s.err
}

// chromeEvent is one Chrome trace-event ("X" complete event). Timestamps
// and durations are microseconds, per the trace-event format.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// ChromeSink accumulates spans and, on Close, writes a Chrome trace-event
// JSON document ({"traceEvents": [...]}) loadable by chrome://tracing and
// Perfetto. Virtual nanoseconds map to trace microseconds.
type ChromeSink struct {
	mu     sync.Mutex
	w      io.Writer
	events []chromeEvent
}

// NewChrome returns a sink producing a Chrome trace-event file on w.
func NewChrome(w io.Writer) *ChromeSink {
	return &ChromeSink{w: w}
}

// Emit buffers one complete ("X") event for the span.
func (s *ChromeSink) Emit(sp *Span) {
	args := map[string]any{
		"syscall_ns":   sp.Cost.SyscallNS,
		"lock_wait_ns": sp.Cost.LockWaitNS,
		"journal_ns":   sp.Cost.JournalNS,
		"copy_ns":      sp.Cost.CopyNS,
		"fault_ns":     sp.Cost.FaultNS,
		"zero_ns":      sp.Cost.ZeroNS,
	}
	for k, v := range sp.Attrs {
		args[k] = v
	}
	ev := chromeEvent{
		Name: sp.Name,
		Cat:  "vt",
		Ph:   "X",
		TS:   float64(sp.StartNS) / 1e3,
		Dur:  float64(sp.DurNS) / 1e3,
		PID:  1,
		TID:  sp.Thread,
		Args: args,
	}
	s.mu.Lock()
	s.events = append(s.events, ev)
	s.mu.Unlock()
}

// Close writes the accumulated trace document and closes w when it is a
// Closer.
func (s *ChromeSink) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	doc := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
		TimeUnit    string        `json:"displayTimeUnit"`
	}{TraceEvents: s.events, TimeUnit: "ns"}
	if s.events == nil {
		doc.TraceEvents = []chromeEvent{}
	}
	err := json.NewEncoder(s.w).Encode(doc)
	if c, ok := s.w.(io.Closer); ok {
		if cerr := c.Close(); err == nil {
			err = cerr
		}
	}
	return err
}

// CollectSink retains completed spans in memory; tests and in-process
// consumers (span-tree assertions, winebench summaries) read them back.
type CollectSink struct {
	mu    sync.Mutex
	spans []*Span
}

// NewCollect returns an in-memory sink.
func NewCollect() *CollectSink { return &CollectSink{} }

// Emit retains the span.
func (s *CollectSink) Emit(sp *Span) {
	s.mu.Lock()
	s.spans = append(s.spans, sp)
	s.mu.Unlock()
}

// Close is a no-op.
func (s *CollectSink) Close() error { return nil }

// Spans returns the completed spans in completion order.
func (s *CollectSink) Spans() []*Span {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Span, len(s.spans))
	copy(out, s.spans)
	return out
}
