// Package nova models NOVA, the log-structured PM file system that is the
// paper's primary strict-mode comparison point. The properties that matter
// to the reproduction, each taken from the paper's characterisation:
//
//   - per-CPU allocators, giving NOVA its excellent scalability (§5.6);
//   - a per-inode log, allocated from the data area — "NOVA has a per-file
//     log that causes fragmentation, using up an aligned extent" (§3.4);
//     logs grow block by block and are compacted by garbage collection;
//   - alignment only for requests that are exact multiples of 2MiB (§6:
//     "NOVA attempts to allocate hugepage-aligned physical extents, but
//     requires allocation requests to be exact multiples of 2MB");
//   - copy-on-write at 4KiB granularity for data atomicity — including
//     unaligned appends, which copy the old partial block ("NOVA forces
//     these appends to a new 4KB page ... causing high write
//     amplification", §5.5);
//   - allocation and zero-out at fallocate time, so page faults are cheap
//     but numerous (Table 2 discussion).
package nova

import (
	"sync"

	"repro/internal/alloc"
	"repro/internal/fsbase"
	"repro/internal/pmem"
	"repro/internal/sim"
	"repro/internal/vfs"
)

const dataStartBlk = 23

// logEntriesPerBlock is how many 64B log records fit one 4KiB log block.
const logEntriesPerBlock = fsbase.BlockSize / 64

// gcThresholdBlocks triggers log compaction once an inode's log exceeds
// this many blocks.
const gcThresholdBlocks = 8

// Options selects NOVA's consistency mode.
type Options struct {
	// Relaxed selects NOVA-relaxed (metadata consistency only), the
	// variant the paper compares in the relaxed group.
	Relaxed bool
	// CPUs sets the number of per-CPU allocation pools (default 8).
	CPUs int
}

// New mounts a fresh NOVA instance over dev.
func New(dev *pmem.Device, opts Options) *fsbase.FS {
	if opts.CPUs <= 0 {
		opts.CPUs = 8
	}
	total := dev.Size()/fsbase.BlockSize - dataStartBlk
	per := total / int64(opts.CPUs)
	h := &hooks{
		model:   dev.Model(),
		relaxed: opts.Relaxed,
		log:     fsbase.NewPerInodeLog(dev.Model()),
	}
	for c := 0; c < opts.CPUs; c++ {
		start := dataStartBlk + int64(c)*per
		h.pools = append(h.pools, fsbase.NewLockedPool(start, per))
	}
	return fsbase.New(dev, h)
}

type hooks struct {
	model   *pmem.CostModel
	pools   []*fsbase.LockedPool
	log     *fsbase.PerInodeLog
	relaxed bool

	mu sync.Mutex // guards per-node log bookkeeping done outside node locks
}

func (h *hooks) Name() string {
	if h.relaxed {
		return "NOVA-relaxed"
	}
	return "NOVA"
}

func (h *hooks) Mode() vfs.ConsistencyMode {
	if h.relaxed {
		return vfs.Relaxed
	}
	return vfs.Strict
}

func (h *hooks) TotalBlocks() int64 {
	var t int64
	for _, p := range h.pools {
		t += p.Total()
	}
	return t
}

func (h *hooks) FreeBlocks() int64 {
	var t int64
	for _, p := range h.pools {
		t += p.Free()
	}
	return t
}

func (h *hooks) FreeExtents() []alloc.Extent {
	var out []alloc.Extent
	for _, p := range h.pools {
		out = append(out, p.Extents()...)
	}
	return alloc.Merge(out)
}

func (h *hooks) pool(ctx *sim.Ctx) *fsbase.LockedPool {
	return h.pools[ctx.CPU%len(h.pools)]
}

func (h *hooks) Alloc(ctx *sim.Ctx, blocks int64, hint fsbase.AllocHint) ([]alloc.Extent, error) {
	s := fsbase.Strategy{Goal: hint.Goal, NextFit: true}
	// Alignment only for exact hugepage multiples (§6); NOVA scans its own
	// CPU's free list for an aligned run.
	if blocks%alloc.BlocksPerHuge == 0 {
		s.TryAligned = true
	}
	local := h.pool(ctx)
	if ex, ok := local.Take(ctx, blocks, s); ok {
		return ex, nil
	}
	// Local pool dry: steal from the fullest pool.
	var best *fsbase.LockedPool
	var bestFree int64
	for _, p := range h.pools {
		if f := p.Free(); f > bestFree {
			best, bestFree = p, f
		}
	}
	if best != nil {
		if ex, ok := best.Take(ctx, blocks, s); ok {
			ctx.Counters.AllocSteals++
			return ex, nil
		}
	}
	// No single pool can satisfy the request: gather pieces across pools,
	// keeping pieces hugepage-aligned multiples while the remainder allows
	// (NOVA still tries aligned extents for exact-2MiB sub-requests).
	var out []alloc.Extent
	remaining := blocks
	for _, p := range h.pools {
		for remaining > 0 {
			free := p.Free()
			if free == 0 {
				break
			}
			take := remaining
			if take > free {
				take = free
			}
			st := fsbase.Strategy{Goal: -1, NextFit: true}
			if remaining >= alloc.BlocksPerHuge && take >= alloc.BlocksPerHuge {
				take = take / alloc.BlocksPerHuge * alloc.BlocksPerHuge
				st.TryAligned = true
			}
			ex, ok := p.Take(ctx, take, st)
			if !ok {
				if st.TryAligned && take < remaining {
					break
				}
				// Retry without the alignment constraint.
				ex, ok = p.Take(ctx, take, fsbase.Strategy{Goal: -1, NextFit: true})
				if !ok {
					break
				}
			}
			out = append(out, ex...)
			remaining -= take
		}
		if remaining == 0 {
			return out, nil
		}
	}
	h.Free(ctx, out)
	return nil, vfs.ErrNoSpace
}

func (h *hooks) Free(ctx *sim.Ctx, ex []alloc.Extent) {
	// Extents return to the pool that owns their address range.
	for _, e := range ex {
		for _, p := range h.pools {
			if p.Owns(e.Start) {
				p.Release(ctx, []alloc.Extent{e})
				e.Len = 0
				break
			}
		}
		if e.Len > 0 {
			h.pools[0].Release(ctx, []alloc.Extent{e})
		}
	}
}

// MetaOp appends records to the inode's log, growing it block by block and
// compacting it when it exceeds the GC threshold — both operations churn
// the free-space pools, which is NOVA's fragmentation story.
func (h *hooks) MetaOp(ctx *sim.Ctx, n *fsbase.Node, entries int, kind fsbase.MetaKind) {
	h.log.Append(ctx, entries)
	if n == nil {
		return
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	n.LogEntries += int64(entries)
	capEntries := int64(len(n.LogBlocks)) * logEntriesPerBlock
	if n.LogEntries > capEntries {
		if ex, ok := h.pool(ctx).Take(ctx, 1, fsbase.Strategy{Goal: -1}); ok {
			n.LogBlocks = append(n.LogBlocks, ex...)
		}
	}
	if len(n.LogBlocks) > gcThresholdBlocks {
		// Log cleaning: copy live entries into two fresh blocks, free the
		// rest. Interferes with foreground threads via bandwidth and
		// allocator traffic (§2.6).
		ctx.Counters.GCWork += int64(len(n.LogBlocks))
		freed := n.LogBlocks
		n.LogBlocks = nil
		n.LogEntries = n.LogEntries / 4
		if ex, ok := h.pool(ctx).Take(ctx, 2, fsbase.Strategy{Goal: -1}); ok {
			n.LogBlocks = ex
		}
		ctx.Advance(int64(len(freed)) * fsbase.BlockSize / 64 * h.model.WriteLat64 / 8)
		h.freeLocked(ctx, freed)
	}
}

func (h *hooks) freeLocked(ctx *sim.Ctx, ex []alloc.Extent) {
	for _, e := range ex {
		for _, p := range h.pools {
			if p.Owns(e.Start) {
				p.Release(ctx, []alloc.Extent{e})
				e.Len = 0
				break
			}
		}
	}
}

// DRAM radix indexes make lookups near-constant.
func (h *hooks) DirLookup(ctx *sim.Ctx, entries int) { ctx.Advance(160) }

func (h *hooks) Overwrite(ctx *sim.Ctx, n *fsbase.Node, off, length int64) fsbase.OverwriteAction {
	if h.relaxed {
		return fsbase.InPlace
	}
	// §5.5 (PostgreSQL analysis): on every overwrite "NOVA has to delete
	// per-inode log entries, add new entries ... and update DRAM indexes".
	// Invalidate the superseded log entry (64B write + flush + fence) and
	// pay the radix-index update.
	ctx.Advance(h.model.WriteLat64 + h.model.FlushLat + h.model.FenceLat + 150)
	ctx.Counters.JournalBytes += 64
	return fsbase.CoW
}

func (h *hooks) DataWrite(ctx *sim.Ctx, n *fsbase.Node, length int64) {}

func (h *hooks) Fsync(ctx *sim.Ctx, n *fsbase.Node, dirty int64) {
	// Log-structured metadata is already durable.
	ctx.Advance((dirty+63)/64*h.model.FlushLat/8 + h.model.FenceLat)
}

func (h *hooks) ZeroOnFault() bool { return false }

// OnCreate allocates the per-inode log's first block — the 4KiB
// allocations that pepper the data area and defeat hugepage alignment.
func (h *hooks) OnCreate(ctx *sim.Ctx, n *fsbase.Node) {
	if ex, ok := h.pool(ctx).Take(ctx, 1, fsbase.Strategy{Goal: -1}); ok {
		h.mu.Lock()
		n.LogBlocks = ex
		h.mu.Unlock()
	}
}

func (h *hooks) OnDelete(ctx *sim.Ctx, n *fsbase.Node) {
	h.mu.Lock()
	freed := n.LogBlocks
	n.LogBlocks = nil
	n.LogEntries = 0
	h.mu.Unlock()
	h.freeLocked(ctx, freed)
}
