package vfs

import (
	"sync"
	"testing"

	"repro/internal/sim"
)

// Overlapping range writers serialise in virtual time; their waits land in
// LockWaitNS.
func TestLockRangeOverlappingSerialize(t *testing.T) {
	lt := NewLockTable()
	a := sim.NewCtx(1, 0)
	b := sim.NewCtx(2, 1)

	h := lt.LockRange(a, 7, 0, 4096)
	a.Advance(1000)
	h.Unlock(a) // [0,4096) held over [0,1000)

	h = lt.LockRange(b, 7, 2048, 4096) // overlaps, arrives at 0
	if b.Now() != 1000 {
		t.Fatalf("overlapping range writer acquired at %d, want 1000", b.Now())
	}
	if b.Counters.LockWaitNS != 1000 {
		t.Fatalf("LockWaitNS=%d, want 1000", b.Counters.LockWaitNS)
	}
	h.Unlock(b)
}

// Disjoint range writers on the same inode do not serialise.
func TestLockRangeDisjointParallel(t *testing.T) {
	lt := NewLockTable()
	a := sim.NewCtx(1, 0)
	b := sim.NewCtx(2, 1)

	h := lt.LockRange(a, 7, 0, 4096)
	a.Advance(1000)
	h.Unlock(a)

	h = lt.LockRange(b, 7, 4096, 4096) // adjacent but disjoint
	if b.Now() != 0 || b.Counters.LockWaitNS != 0 {
		t.Fatalf("disjoint range writer waited: now=%d wait=%d", b.Now(), b.Counters.LockWaitNS)
	}
	h.Unlock(b)
}

// A whole-inode exclusive lock excludes range writers in both directions.
func TestLockExclusiveVsRange(t *testing.T) {
	lt := NewLockTable()
	w := sim.NewCtx(1, 0)
	r := sim.NewCtx(2, 1)

	h := lt.Lock(w, 7)
	w.Advance(1000)
	h.Unlock(w) // exclusive over [0,1000)

	h = lt.LockRange(r, 7, 1<<20, 4096) // any range waits for the inode lock
	if r.Now() != 1000 {
		t.Fatalf("range writer acquired at %d under exclusive lock, want 1000", r.Now())
	}
	r.Advance(500)
	h.Unlock(r) // range holder's shared occupation books [1000,1500)

	w2 := sim.NewCtx(3, 2)
	w2.Advance(1200)
	h = lt.Lock(w2, 7)
	if w2.Now() != 1500 {
		t.Fatalf("exclusive lock acquired at %d under range writer, want 1500", w2.Now())
	}
	h.Unlock(w2)
}

// Shared readers overlap with each other and with range writers, but wait
// for exclusive holders.
func TestRLockSemantics(t *testing.T) {
	lt := NewLockTable()
	w := sim.NewCtx(1, 0)
	h := lt.Lock(w, 7)
	w.Advance(1000)
	h.Unlock(w)

	a := sim.NewCtx(2, 1)
	ha := lt.RLock(a, 7)
	if a.Now() != 1000 {
		t.Fatalf("reader acquired at %d under exclusive lock, want 1000", a.Now())
	}
	a.Advance(800)

	b := sim.NewCtx(3, 2)
	b.Advance(1100)
	hb := lt.RLock(b, 7) // inside a's read — readers share
	if b.Now() != 1100 {
		t.Fatalf("second reader waited: now=%d, want 1100", b.Now())
	}
	hb.Unlock(b)
	ha.Unlock(a)
}

// Drop removes the entry while a holder exists; the holder's release is
// harmless and a reused inode number starts with a fresh lock.
func TestDropWhileHeld(t *testing.T) {
	lt := NewLockTable()
	ctx := sim.NewCtx(1, 0)
	h := lt.Lock(ctx, 7)
	ctx.Advance(5000)
	lt.Drop(7)
	if lt.Len() != 0 {
		t.Fatalf("Len=%d after Drop, want 0", lt.Len())
	}
	// A fresh locker of the reused number must not see the old occupation —
	// and must not block on the still-held old object.
	fresh := sim.NewCtx(2, 1)
	h2 := lt.Lock(fresh, 7)
	if fresh.Now() != 0 {
		t.Fatalf("reused ino inherited old lock state: now=%d", fresh.Now())
	}
	h2.Unlock(fresh)
	h.Unlock(ctx) // stale holder releases the orphaned object
	if lt.Len() != 1 {
		t.Fatalf("Len=%d, want 1 (the reused entry)", lt.Len())
	}
}

// The table must not grow across create/delete churn when Drop is called.
func TestLockTableNoLeak(t *testing.T) {
	lt := NewLockTable()
	ctx := sim.NewCtx(1, 0)
	for i := 0; i < 1000; i++ {
		ino := uint64(100 + i)
		h := lt.Lock(ctx, ino)
		h.Unlock(ctx)
		lt.Drop(ino)
	}
	if lt.Len() != 0 {
		t.Fatalf("lock table leaked %d entries across churn", lt.Len())
	}
}

// Host-level stress under -race: concurrent readers, range writers and
// exclusive writers on one inode must neither race nor deadlock.
func TestLockTableConcurrencyStress(t *testing.T) {
	lt := NewLockTable()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			ctx := sim.NewCtx(10+g, g)
			for i := 0; i < 200; i++ {
				switch (g + i) % 3 {
				case 0:
					h := lt.RLock(ctx, 7)
					ctx.Advance(50)
					h.Unlock(ctx)
				case 1:
					off := int64((g%4)*8192 + i%2*4096)
					h := lt.LockRange(ctx, 7, off, 4096)
					ctx.Advance(80)
					h.Unlock(ctx)
				default:
					h := lt.Lock(ctx, 7)
					ctx.Advance(30)
					h.Unlock(ctx)
				}
			}
		}(g)
	}
	wg.Wait()
}
