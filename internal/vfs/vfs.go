// Package vfs defines the file-system interface every implementation in
// the reproduction satisfies, plus the pieces of Linux VFS behaviour the
// paper's design leans on: per-inode locks (WineFS coordinates its per-CPU
// journals through them, §3.4) and path utilities.
package vfs

import (
	"errors"
	"strings"

	"repro/internal/alloc"
	"repro/internal/mmu"
	"repro/internal/sim"
)

// Errors mirror the POSIX failures applications observe.
var (
	ErrNotExist = errors.New("vfs: no such file or directory")
	ErrExist    = errors.New("vfs: file exists")
	ErrNotDir   = errors.New("vfs: not a directory")
	ErrIsDir    = errors.New("vfs: is a directory")
	ErrNotEmpty = errors.New("vfs: directory not empty")
	ErrNoSpace  = errors.New("vfs: no space left on device")
	ErrClosed   = errors.New("vfs: file closed")
	ErrReadOnly = errors.New("vfs: read-only")
	// ErrIO is the EIO analogue: an uncorrectable media error (poisoned
	// cache line) or corrupt on-PM pointer was hit while serving the
	// request. Implementations return it instead of corrupt bytes and
	// never panic on media faults.
	ErrIO = errors.New("vfs: input/output error")
	// ErrNotSupported is the ENOTSUP analogue: the operation is valid but
	// this file/file system cannot provide it (e.g. mmap of a remote
	// mount, which shares no address space with the server).
	ErrNotSupported = errors.New("vfs: operation not supported")
	// ErrMapFault is the SIGBUS analogue: an access through a memory
	// mapping touched a page beyond the file's current end (the file was
	// truncated, punched, or unlinked under the mapping, or the mapping
	// was sparse past EOF). It is a per-access error, never a stale
	// translation.
	ErrMapFault = errors.New("vfs: mapped access beyond end of file (SIGBUS)")
)

// ConsistencyMode states the crash guarantees a mounted file system
// provides (paper §3.3).
type ConsistencyMode int

const (
	// Relaxed: metadata operations are atomic and synchronous; data
	// operations may be partially complete after a crash (ext4-DAX, xfs-DAX,
	// PMFS, WineFS-relaxed).
	Relaxed ConsistencyMode = iota
	// Strict: data and metadata operations are atomic and synchronous
	// (NOVA, Strata, WineFS-strict).
	Strict
)

func (m ConsistencyMode) String() string {
	if m == Strict {
		return "strict"
	}
	return "relaxed"
}

// FileInfo describes a file or directory.
type FileInfo struct {
	Ino   uint64
	Size  int64
	IsDir bool
	Nlink int
}

// DirEntry is one directory listing entry.
type DirEntry struct {
	Name  string
	Ino   uint64
	IsDir bool
}

// StatFS summarises space accounting; FreeExtents feeds the fragmentation
// analyses.
type StatFS struct {
	TotalBlocks int64
	FreeBlocks  int64
	// FreeAligned2M counts free, aligned, contiguous hugepage regions.
	FreeAligned2M int64
	Files         int64
}

// FS is the interface all seven file systems implement. Paths are
// slash-separated and absolute ("/a/b"). All methods charge virtual time
// to ctx, including the syscall entry cost.
type FS interface {
	Name() string
	Mode() ConsistencyMode

	Create(ctx *sim.Ctx, path string) (File, error)
	Open(ctx *sim.Ctx, path string) (File, error)
	Mkdir(ctx *sim.Ctx, path string) error
	Unlink(ctx *sim.Ctx, path string) error
	Rmdir(ctx *sim.Ctx, path string) error
	Rename(ctx *sim.Ctx, oldPath, newPath string) error
	Stat(ctx *sim.Ctx, path string) (FileInfo, error)
	ReadDir(ctx *sim.Ctx, path string) ([]DirEntry, error)
	StatFS(ctx *sim.Ctx) StatFS
	// FreeExtents returns the current free-space extent list (blocks).
	FreeExtents() []alloc.Extent
	// Unmount cleanly shuts the file system down (serialising any DRAM
	// structures its design persists on unmount).
	Unmount(ctx *sim.Ctx) error
}

// File is an open file handle.
type File interface {
	Ino() uint64
	Size() int64
	ReadAt(ctx *sim.Ctx, p []byte, off int64) (int, error)
	WriteAt(ctx *sim.Ctx, p []byte, off int64) (int, error)
	// Append writes at the current end of file.
	Append(ctx *sim.Ctx, p []byte) (int, error)
	Truncate(ctx *sim.Ctx, size int64) error
	// Fallocate preallocates [off, off+n) with real blocks.
	Fallocate(ctx *sim.Ctx, off, n int64) error
	Fsync(ctx *sim.Ctx) error
	// Mmap maps length bytes of the file from offset 0. length may exceed
	// the current size for sparse mappings (LMDB-style ftruncate growth).
	Mmap(ctx *sim.Ctx, length int64) (*mmu.Mapping, error)
	// Extents returns the file's current physical layout.
	Extents() []mmu.Extent
	SetXattr(ctx *sim.Ctx, name string, value []byte) error
	GetXattr(ctx *sim.Ctx, name string) ([]byte, bool)
	Close(ctx *sim.Ctx) error
}

// Mapper is the optional File extension backing the zero-copy mapping
// subsystem (internal/vmm). A file that implements it can serve page
// faults directly from its extent tree: vmm carves a window out of
// MapSpace, installs the file as the fault handler, and charges
// fault/TLB/page-walk costs per access instead of per-syscall copies.
// Files that cannot be mapped (remote mounts, failover proxies) simply
// don't implement it and vmm.Map returns ErrNotSupported.
type Mapper interface {
	mmu.FaultHandler
	// MapSpace returns the address space mappings over this file live in;
	// nil means the file cannot be memory-mapped.
	MapSpace() *mmu.AddressSpace
	// AttachMapping registers a live mapping so layout changes (truncate,
	// punch, unlink, reactive rewriting) can shoot down its translations.
	AttachMapping(m *mmu.Mapping)
	// DetachMapping unregisters a mapping at munmap.
	DetachMapping(m *mmu.Mapping)
	// MsyncRange makes stores issued through a mapping to [off, off+n)
	// durable under the file system's rules (clwb per line + sfence; in
	// strict mode the fault-time metadata was already journaled, so no
	// further journal barrier is needed — see DESIGN.md §11).
	MsyncRange(ctx *sim.Ctx, off, n int64) error
	// MapSyscallNS is the kernel-entry cost charged per mmap/munmap/msync.
	MapSyscallNS() int64
}

// HolePuncher is the optional fallocate(FALLOC_FL_PUNCH_HOLE) extension:
// deallocate [off, off+n), leaving a hole that reads back as zeros.
type HolePuncher interface {
	PunchHole(ctx *sim.Ctx, off, n int64) error
}

// MapTracker reports how many live mappings cover an inode. The file
// server consults it before granting client leases: a locally mapped
// file must not be cached remotely (stores through the mapping bypass
// any lease protocol), so lease requests on mapped inodes are refused
// and those clients run uncached.
type MapTracker interface {
	MappedCount(ino uint64) int
}

// MapNotifier lets a server register a hook that fires when a mapping
// attaches to an inode, so leases already granted on it can be revoked
// (the reverse direction of MapTracker's refusal).
type MapNotifier interface {
	SetMapHook(hook func(ino uint64))
}

// HugeProber is an optional Mapper extension: report, without allocating
// or faulting, whether the 2MiB file chunk at chunkOff (file-offset,
// hugepage-aligned) is hugepage-eligible. The mapping subsystem uses it
// to re-promote live mappings when the file system announces an improved
// layout (§3.5 defragmenter, §3.6 reactive rewrite) instead of waiting
// for a refault. When the chunk is eligible, install — if non-nil — runs
// with the backing physical byte address while the implementation still
// holds its layout read lock, so the caller can plant a hugepage
// translation that no concurrent truncate/rewrite can race with freed
// blocks (layout changes take the write lock and shoot mappings down
// first). install must be brief and must not call back into the file.
type HugeProber interface {
	ProbeHuge(chunkOff int64, install func(phys int64)) bool
}

// XattrAligned is the extended attribute WineFS uses to persist a file's
// alignment hint across copies (§3.6).
const XattrAligned = "user.winefs.aligned"

// Split separates a cleaned path into parent directory and final element.
func Split(path string) (dir, name string) {
	path = Clean(path)
	i := strings.LastIndexByte(path, '/')
	if i <= 0 {
		return "/", path[i+1:]
	}
	return path[:i], path[i+1:]
}

// SplitParent separates a cleaned path into parent directory and final
// element, rejecting paths with no final element. Split("/") returns an
// empty name, which every namespace-mutating operation (Create, Mkdir,
// Unlink, Rename, ...) must refuse rather than manufacture a nameless
// dirent; SplitParent centralises that guard so each filesystem cannot
// forget it. The root resolves to ErrExist — it always exists, matching
// what Create/Mkdir must report — and callers for which "exists" is not
// the failure (Unlink, Rmdir, rename sources) remap it to their own
// EBUSY/EINVAL-style refusal.
func SplitParent(path string) (dir, name string, err error) {
	dir, name = Split(path)
	if name == "" {
		return dir, name, ErrExist
	}
	return dir, name, nil
}

// Clean normalises a path: ensures a leading slash, strips trailing
// slashes, collapses duplicate separators and resolves dot segments
// lexically. "." elements are dropped and ".." pops the previous element;
// a ".." at the root stays at the root. Every path is therefore confined
// to the export root, so untrusted client paths (the network file server
// hands Clean whatever arrives on the wire) cannot traverse above "/".
func Clean(path string) string {
	if path == "" {
		return "/"
	}
	if isClean(path) {
		// Paths are overwhelmingly already clean (every internal caller
		// builds them that way); returning them untouched skips the
		// split/join allocations on the hot lookup path.
		return path
	}
	parts := strings.Split(path, "/")
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		switch p {
		case "", ".":
			// Empty (duplicate or trailing separator) and current-dir
			// elements contribute nothing.
		case "..":
			if len(out) > 0 {
				out = out[:len(out)-1]
			}
		default:
			out = append(out, p)
		}
	}
	if len(out) == 0 {
		return "/"
	}
	return "/" + strings.Join(out, "/")
}

// isClean reports whether Clean would return path unchanged: a leading
// slash, no trailing slash (except "/" itself), and no empty, "." or ".."
// elements.
func isClean(path string) bool {
	if path[0] != '/' {
		return false
	}
	if len(path) == 1 {
		return true
	}
	if path[len(path)-1] == '/' {
		return false
	}
	start := 1
	for i := 1; i <= len(path); i++ {
		if i == len(path) || path[i] == '/' {
			switch path[start:i] {
			case "", ".", "..":
				return false
			}
			start = i + 1
		}
	}
	return true
}

// Components splits a cleaned path into its elements; "/" yields nil.
func Components(path string) []string {
	path = Clean(path)
	if path == "/" {
		return nil
	}
	return strings.Split(path[1:], "/")
}

// The per-inode reader/writer + byte-range lock table lives in locks.go.
