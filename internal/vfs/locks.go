// Per-inode locking: the VFS inode rwsem plus a byte-range lock table.
//
// The paper's WineFS leans on the kernel VFS holding an exclusive per-inode
// lock around metadata operations ("An inode can only be locked by one
// logical CPU at a time", §3.4). A faithful concurrency model needs the
// rest of the kernel's behaviour too: lookups and reads take the inode lock
// *shared*, and data writes to an already-allocated region only exclude
// writers touching overlapping byte ranges — this is what lets per-CPU
// journals and allocation groups actually run in parallel instead of
// serialising every operation on one mutex.
//
// Three lock modes, in decreasing strength:
//
//	Lock       exclusive whole-inode — metadata and size-changing ops
//	LockRange  shared whole-inode + exclusive [off, off+n) byte range —
//	           in-place data writes; disjoint ranges proceed in parallel
//	RLock      shared whole-inode — reads, stats, directory listings
//
// Every acquisition returns a *LockHandle that must be released with
// Unlock. The handle pins the inode's lock object, so Drop (called when an
// inode is freed) can remove the table entry while holders still exist: a
// reused inode number gets a fresh lock object, and stale holders release
// the orphaned one harmlessly.
package vfs

import (
	"sync"

	"repro/internal/sim"
)

// LockTable provides per-inode reader/writer and byte-range virtual-time
// locks. It is safe for concurrent use.
type LockTable struct {
	mu    sync.Mutex
	locks map[uint64]*inodeLock
}

// NewLockTable returns an empty lock table.
func NewLockTable() *LockTable {
	return &LockTable{locks: make(map[uint64]*inodeLock)}
}

// inodeLock is one inode's lock state: the whole-inode rwsem plus the
// byte-range writer table layered under its shared side.
type inodeLock struct {
	rw sim.RWResource

	rmu    sync.Mutex  // guards the fields below
	rcond  *sync.Cond  // signalled when an active range is released
	active []byteRange // ranges held right now (host level)
	booked []rangeOcc  // past range occupations (virtual-time calendar)
}

type byteRange struct{ off, end int64 }

func (a byteRange) overlaps(b byteRange) bool { return a.off < b.end && b.off < a.end }

// rangeOcc is a booked range occupation: bytes [off, end) were exclusively
// held over virtual interval [start, until).
type rangeOcc struct {
	byteRange
	start, until int64
}

// maxRangeOccs bounds the per-inode range calendar; oldest entries are
// dropped first (clocks only move forward).
const maxRangeOccs = 256

// lockMode records how a handle was acquired, so Unlock releases exactly
// what Lock took.
type lockMode uint8

const (
	modeExclusive lockMode = iota
	modeShared
	modeRange
)

// LockHandle is a held lock. Release it with Unlock, passing the same ctx
// family (any ctx works; the releasing thread's clock seals the occupation).
type LockHandle struct {
	l        *inodeLock
	mode     lockMode
	inoStart int64 // shared-side acquisition instant (shared and range modes)
	r        byteRange
	rngStart int64 // range acquisition instant
}

// lock returns ino's lock object, creating it on first use.
func (lt *LockTable) lock(ino uint64) *inodeLock {
	lt.mu.Lock()
	l := lt.locks[ino]
	if l == nil {
		l = &inodeLock{}
		l.rcond = sync.NewCond(&l.rmu)
		lt.locks[ino] = l
	}
	lt.mu.Unlock()
	return l
}

// Lock acquires the inode exclusively, advancing ctx past every booked
// occupation (shared, exclusive, or range) that covers its instant.
func (lt *LockTable) Lock(ctx *sim.Ctx, ino uint64) *LockHandle {
	l := lt.lock(ino)
	l.rw.Lock(ctx)
	return &LockHandle{l: l, mode: modeExclusive}
}

// RLock acquires the inode shared: concurrent RLock holders (and range
// writers) overlap freely; exclusive holders are waited for.
func (lt *LockTable) RLock(ctx *sim.Ctx, ino uint64) *LockHandle {
	l := lt.lock(ino)
	start := l.rw.RLock(ctx)
	return &LockHandle{l: l, mode: modeShared, inoStart: start}
}

// LockRange acquires the inode shared plus bytes [off, off+n) exclusively:
// whole-inode exclusive holders and overlapping ranges are waited for;
// disjoint ranges proceed in parallel. n <= 0 locks a single byte at off.
func (lt *LockTable) LockRange(ctx *sim.Ctx, ino uint64, off, n int64) *LockHandle {
	if n <= 0 {
		n = 1
	}
	l := lt.lock(ino)
	inoStart := l.rw.RLock(ctx)
	r := byteRange{off, off + n}

	l.rmu.Lock()
	for l.overlapsActive(r) {
		// A conflicting range is held right now: block at the host level
		// until its holder books its occupation, then recompute.
		l.rcond.Wait()
	}
	t := l.skipBookedLocked(r, ctx.Now())
	l.active = append(l.active, r)
	l.rmu.Unlock()

	if waited := t - ctx.Now(); waited > 0 && ctx.Counters != nil {
		ctx.Counters.LockWaitNS += waited
	}
	ctx.AdvanceTo(t)
	return &LockHandle{l: l, mode: modeRange, inoStart: inoStart, r: r, rngStart: t}
}

// Unlock releases the handle, booking the occupation on the corresponding
// virtual-time calendar.
func (h *LockHandle) Unlock(ctx *sim.Ctx) {
	switch h.mode {
	case modeExclusive:
		h.l.rw.Unlock(ctx)
	case modeShared:
		h.l.rw.RUnlock(ctx, h.inoStart)
	case modeRange:
		l := h.l
		l.rmu.Lock()
		if now := ctx.Now(); now > h.rngStart {
			l.booked = append(l.booked, rangeOcc{h.r, h.rngStart, now})
			if len(l.booked) > maxRangeOccs {
				l.booked = l.booked[len(l.booked)-maxRangeOccs:]
			}
		}
		for i, a := range l.active {
			if a == h.r {
				l.active = append(l.active[:i], l.active[i+1:]...)
				break
			}
		}
		l.rcond.Broadcast()
		l.rmu.Unlock()
		l.rw.RUnlock(ctx, h.inoStart)
	}
}

// overlapsActive reports whether any currently-held range overlaps r.
// Caller holds l.rmu.
func (l *inodeLock) overlapsActive(r byteRange) bool {
	for _, a := range l.active {
		if a.overlaps(r) {
			return true
		}
	}
	return false
}

// skipBookedLocked returns the first instant at or after t that is past
// every booked occupation overlapping r in bytes. An acquirer queues behind
// ALL existing overlapping bookings — not just those containing t — because
// its own occupation's length is unknown until release: letting a thread
// whose clock lags start in a gap between bookings would let its occupation
// overlap the next booking, and conflicting writes would overlap in virtual
// time. Caller holds l.rmu.
func (l *inodeLock) skipBookedLocked(r byteRange, t int64) int64 {
	for _, o := range l.booked {
		if o.overlaps(r) && o.until > t {
			t = o.until
		}
	}
	return t
}

// Drop removes the lock entry for a freed inode. Current holders keep
// their (now orphaned) lock object and release it normally; the next
// locker of a reused inode number gets a fresh entry.
func (lt *LockTable) Drop(ino uint64) {
	lt.mu.Lock()
	delete(lt.locks, ino)
	lt.mu.Unlock()
}

// Len reports the number of live lock entries (leak tests).
func (lt *LockTable) Len() int {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	return len(lt.locks)
}
