package vfs

import (
	"testing"

	"repro/internal/sim"
)

func TestClean(t *testing.T) {
	cases := map[string]string{
		"":           "/",
		"/":          "/",
		"//":         "/",
		"a":          "/a",
		"/a/b":       "/a/b",
		"/a//b/":     "/a/b",
		"a/b/c":      "/a/b/c",
		"///x///y//": "/x/y",
		// Dot-segment resolution: untrusted (network) paths must not be
		// able to traverse above the export root or smuggle "." / ".."
		// components into directory entries.
		".":           "/",
		"/./":         "/",
		"/a/./b":      "/a/b",
		"/a/../b":     "/b",
		"/a/../../b":  "/b",
		"..":          "/",
		"/..":         "/",
		"/../..":      "/",
		"/../x":       "/x",
		"/a/b/../../": "/",
		"/a//.//../b": "/b",
		"/a/b/..":     "/a",
		"/...":        "/...", // only exactly "." and ".." are special
		"/..a/b":      "/..a/b",
	}
	for in, want := range cases {
		if got := Clean(in); got != want {
			t.Errorf("Clean(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestSplit(t *testing.T) {
	cases := []struct{ in, dir, name string }{
		{"/a/b/c", "/a/b", "c"},
		{"/a", "/", "a"},
		{"a", "/", "a"},
		{"/a/b/", "/a", "b"},
	}
	for _, c := range cases {
		dir, name := Split(c.in)
		if dir != c.dir || name != c.name {
			t.Errorf("Split(%q) = %q, %q; want %q, %q", c.in, dir, name, c.dir, c.name)
		}
	}
}

// TestSplitParentRejectsRoot is the regression test for the empty-name
// hole: Split("/") yields name == "", which namespace-mutating ops must
// never accept as a dirent name. SplitParent is the one centralized guard.
func TestSplitParentRejectsRoot(t *testing.T) {
	for _, in := range []string{"/", "", "//", "/.", "/a/..", "/../.."} {
		if _, _, err := SplitParent(in); err != ErrExist {
			t.Errorf("SplitParent(%q) err = %v, want ErrExist", in, err)
		}
	}
	dir, name, err := SplitParent("/a/b")
	if err != nil || dir != "/a" || name != "b" {
		t.Fatalf("SplitParent(/a/b) = %q, %q, %v", dir, name, err)
	}
	dir, name, err = SplitParent("a")
	if err != nil || dir != "/" || name != "a" {
		t.Fatalf("SplitParent(a) = %q, %q, %v", dir, name, err)
	}
}

func TestComponents(t *testing.T) {
	if c := Components("/"); c != nil {
		t.Fatalf("Components(/) = %v", c)
	}
	c := Components("/a/b/c")
	if len(c) != 3 || c[0] != "a" || c[2] != "c" {
		t.Fatalf("Components = %v", c)
	}
}

func TestLockTableSerialisesSameInode(t *testing.T) {
	lt := NewLockTable()
	a := sim.NewCtx(1, 0)
	b := sim.NewCtx(2, 1)
	ha := lt.Lock(a, 7)
	a.Advance(100)
	ha.Unlock(a)
	hb := lt.Lock(b, 7)
	if b.Now() != 100 {
		t.Fatalf("b entered critical section at %d, want 100", b.Now())
	}
	hb.Unlock(b)
}

func TestLockTableIndependentInodes(t *testing.T) {
	lt := NewLockTable()
	a := sim.NewCtx(1, 0)
	b := sim.NewCtx(2, 1)
	ha := lt.Lock(a, 1)
	a.Advance(1000)
	// A different inode must not wait.
	hb := lt.Lock(b, 2)
	if b.Now() != 0 {
		t.Fatalf("independent inode waited until %d", b.Now())
	}
	hb.Unlock(b)
	ha.Unlock(a)
	lt.Drop(1)
	lt.Drop(2)
}

func TestModeString(t *testing.T) {
	if Relaxed.String() != "relaxed" || Strict.String() != "strict" {
		t.Fatal("mode strings wrong")
	}
}
