// Crashrecovery: demonstrate WineFS's per-CPU undo journals end to end
// (§3.6, §5.2). The example records every device store during a rename,
// constructs a crash state in which only half of the in-flight stores
// became durable, then mounts the image: recovery rolls the uncommitted
// transaction back across the per-CPU journals and the offline checker
// verifies the result.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/pmem"
)

func main() {
	dev := repro.NewDevice(128 << 20)
	ctx := repro.NewThread(1, 0)
	fs, err := repro.MkfsWineFS(ctx, dev, repro.WineFSOptions{CPUs: 2})
	if err != nil {
		log.Fatal(err)
	}

	// Some initial state.
	if err := fs.Mkdir(ctx, "/inbox"); err != nil {
		log.Fatal(err)
	}
	f, err := fs.Create(ctx, "/inbox/draft")
	if err != nil {
		log.Fatal(err)
	}
	if _, err := f.Append(ctx, []byte("message body")); err != nil {
		log.Fatal(err)
	}

	// Snapshot, then trace the stores of an atomic rename.
	base := dev.Snapshot()
	dev.StartTrace()
	if err := fs.Rename(ctx, "/inbox/draft", "/inbox/sent"); err != nil {
		log.Fatal(err)
	}
	trace := dev.StopTrace()
	fmt.Printf("rename issued %d device stores across %d fence epochs\n",
		len(trace), trace[len(trace)-1].Epoch+1)

	// Crash state: all stores from completed epochs, but only every other
	// store from the final epoch, persist.
	lastEpoch := trace[len(trace)-1].Epoch
	var applied []pmem.Store
	kept := 0
	for i, s := range trace {
		if s.Epoch < lastEpoch || i%2 == 0 {
			applied = append(applied, s)
			kept++
		}
	}
	img := base.Clone()
	img.Apply(applied)
	dev.Restore(img)
	fmt.Printf("crash state: %d of %d stores persisted\n", kept, len(trace))

	// Recover: mount rolls back the in-flight transaction.
	rctx := repro.NewThread(2, 0)
	rfs, err := repro.MountWineFS(rctx, dev, repro.WineFSOptions{CPUs: 2})
	if err != nil {
		log.Fatal(err)
	}
	if rep := repro.CheckWineFS(dev); !rep.OK() {
		log.Fatalf("fsck failed after recovery: %v", rep.Errors)
	}
	_, errOld := rfs.Stat(rctx, "/inbox/draft")
	_, errNew := rfs.Stat(rctx, "/inbox/sent")
	switch {
	case errOld == nil && errNew != nil:
		fmt.Println("recovered state: rename rolled back (draft present) — consistent")
	case errOld != nil && errNew == nil:
		fmt.Println("recovered state: rename completed (sent present) — consistent")
	default:
		log.Fatalf("inconsistent: draft=%v sent=%v", errOld, errNew)
	}
	fmt.Printf("recovery took %.2fms of virtual time; fsck: clean\n", float64(rctx.Now())/1e6)
}
