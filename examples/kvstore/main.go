// Kvstore: run the PmemKV-style memory-mapped key-value store (the §5.4
// workload) on an aged WineFS and an aged ext4-DAX, reproducing the
// Figure 7(c) comparison at demo scale: PmemKV grows its pool with
// fallocate, and on ext4-DAX every page fault must zero its page, while
// WineFS serves the pool from pre-zeroed aligned extents.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/apps/pmemkv"
	"repro/internal/sim"
)

func main() {
	const (
		records = 8000
		valSize = 4096
	)
	fmt.Printf("PmemKV fillseq: %d records x %dB on aged file systems\n\n", records, valSize)

	for _, name := range []string{"WineFS", "ext4-DAX", "NOVA"} {
		dev := repro.NewDevice(1 << 30)
		setup := repro.NewThread(1, 0)
		fs, err := repro.NewFS(setup, dev, name)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := repro.Age(setup, fs, repro.AgingConfig{
			TargetUtil: 0.75, ChurnFactor: 1, Seed: 3,
		}); err != nil {
			log.Fatal(err)
		}

		ctx := sim.NewCtx(2, 0)
		ctx.AdvanceTo(setup.Now())
		db, err := pmemkv.OpenSized(ctx, fs, "/kv", 64<<20)
		if err != nil {
			log.Fatal(err)
		}
		start := ctx.Now()
		val := make([]byte, valSize)
		for i := uint64(0); i < records; i++ {
			if err := db.Put(ctx, i, val); err != nil {
				log.Fatalf("%s: put %d: %v", name, i, err)
			}
		}
		elapsed := ctx.Now() - start
		ops := float64(records) / (float64(elapsed) / 1e9)

		// Read back a sample to prove integrity.
		buf := make([]byte, valSize)
		if n, err := db.Get(ctx, records/2, buf); err != nil || n != valSize {
			log.Fatalf("%s: get: n=%d err=%v", name, n, err)
		}

		fmt.Printf("%-10s  %8.0f inserts/s   faults: %d huge / %d base\n",
			name, ops, ctx.Counters.HugeFaults, ctx.Counters.PageFaults)
	}
	fmt.Println("\nWineFS keeps serving the fallocated pool from hugepages even aged;")
	fmt.Println("the baselines fall back to base pages and fault-time work (Table 2).")
}
