// Aging: reproduce the paper's headline observation (Figures 1 and 3) at
// demo scale. Three file systems are subjected to identical Geriatrix
// create/delete churn to 70% utilisation; the example then reports how
// much of each file system's free space still sits in 2MiB-aligned
// regions, and what memory-mapped write bandwidth a new file achieves.
//
// Expected output shape: WineFS retains nearly all of its aligned free
// space and its bandwidth; ext4-DAX and NOVA fragment and slow down.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/alloc"
)

func main() {
	fmt.Println("aging three file systems to 70% utilisation (identical churn)...")
	fmt.Println()
	fmt.Printf("%-10s  %-22s  %-18s\n", "fs", "aligned free space", "mmap write bandwidth")

	for _, name := range []string{"WineFS", "ext4-DAX", "NOVA"} {
		dev := repro.NewDevice(1 << 30)
		ctx := repro.NewThread(1, 0)
		fs, err := repro.NewFS(ctx, dev, name)
		if err != nil {
			log.Fatal(err)
		}
		if _, err := repro.Age(ctx, fs, repro.AgingConfig{
			TargetUtil:  0.70,
			ChurnFactor: 1.5,
			Seed:        7,
		}); err != nil {
			log.Fatal(err)
		}
		alignedFrac := alloc.AlignedFreeFraction(fs.FreeExtents())

		// Bandwidth probe: allocate and mmap-write a 32MiB file.
		const probe = 32 << 20
		f, err := fs.Create(ctx, "/probe")
		if err != nil {
			log.Fatal(err)
		}
		if err := f.Fallocate(ctx, 0, probe); err != nil {
			log.Fatal(err)
		}
		m, err := f.Mmap(ctx, probe)
		if err != nil {
			log.Fatal(err)
		}
		bench := repro.NewThread(2, 0)
		bench.AdvanceTo(ctx.Now())
		start := bench.Now()
		if err := m.Touch(bench, 0, probe, true); err != nil {
			log.Fatal(err)
		}
		gbs := float64(probe) / float64(bench.Now()-start)

		fmt.Printf("%-10s  %6.1f%% of free space  %6.2f GB/s  (%d huge / %d base faults)\n",
			name, alignedFrac*100, gbs, bench.Counters.HugeFaults, bench.Counters.PageFaults)
	}
}
