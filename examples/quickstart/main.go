// Quickstart: create a simulated persistent-memory device, format it with
// WineFS, and see the paper's core mechanism in action — a large file
// allocated from aligned extents maps with a handful of 2MiB hugepage
// faults, while the same file on xfs-DAX (which disregards alignment)
// takes hundreds of 4KiB faults and runs measurably slower.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	const fileSize = 16 << 20 // 16 MiB

	for _, fsName := range []string{"WineFS", "xfs-DAX"} {
		dev := repro.NewDevice(256 << 20)
		ctx := repro.NewThread(1, 0)
		fs, err := repro.NewFS(ctx, dev, fsName)
		if err != nil {
			log.Fatal(err)
		}

		// Create a file and preallocate it (a "large allocation request" —
		// WineFS satisfies it from 2MiB-aligned extents, §3.4).
		f, err := fs.Create(ctx, "/data")
		if err != nil {
			log.Fatal(err)
		}
		if err := f.Fallocate(ctx, 0, fileSize); err != nil {
			log.Fatal(err)
		}

		// Memory-map it and write through the mapping, like a PM-native
		// application (PMDK, PmemKV, ...).
		m, err := f.Mmap(ctx, fileSize)
		if err != nil {
			log.Fatal(err)
		}
		bench := repro.NewThread(2, 0)
		bench.AdvanceTo(ctx.Now())
		start := bench.Now()
		payload := make([]byte, 1<<20)
		for off := int64(0); off < fileSize; off += int64(len(payload)) {
			if err := m.Write(bench, payload, off); err != nil {
				log.Fatal(err)
			}
		}
		elapsed := bench.Now() - start
		c := bench.Counters

		fmt.Printf("%-8s  hugepage faults: %3d   base-page faults: %4d   write time: %5.2fms  (%.2f GB/s)\n",
			fsName, c.HugeFaults, c.PageFaults,
			float64(elapsed)/1e6, float64(fileSize)/float64(elapsed))
	}

	fmt.Println("\nWineFS maps the file with 2MiB hugepages (512x fewer faults);")
	fmt.Println("xfs-DAX cannot, even on a freshly formatted partition (paper footnote 1).")
}
