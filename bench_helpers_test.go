package repro

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/sim"
	"repro/internal/workloads"
)

// alignedFreeFraction reports the fraction of fs's free space that lies in
// aligned, contiguous 2MiB regions.
func alignedFreeFraction(fs FS) float64 {
	return alloc.AlignedFreeFraction(fs.FreeExtents())
}

// scalabilityProbe runs the Figure 10 microbenchmark at 8 threads.
func scalabilityProbe(fs FS, setup *sim.Ctx) (float64, error) {
	for th := 0; th < 8; th++ {
		if err := fs.Mkdir(setup, fmt.Sprintf("/w%d", th)); err != nil {
			return 0, err
		}
	}
	return workloads.Scalability(fs, workloads.ScalabilityConfig{Threads: 8, OpsPerThread: 100})
}
