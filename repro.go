// Package repro is the public facade of the WineFS reproduction: a
// simulation-complete implementation of "WineFS: a hugepage-aware file
// system for persistent memory that ages gracefully" (SOSP 2021), together
// with the six persistent-memory file systems the paper compares against,
// the aging and crash-testing methodology, the application analogues, and
// a runner for every figure and table in the paper's evaluation.
//
// Quick start:
//
//	dev := repro.NewDevice(1 << 30)                  // 1 GiB simulated PM
//	ctx := repro.NewThread(1, 0)                     // thread 1 on CPU 0
//	fs, err := repro.MkfsWineFS(ctx, dev, repro.WineFSOptions{CPUs: 8})
//	f, _ := fs.Create(ctx, "/data")
//	_ = f.Fallocate(ctx, 0, 8<<20)                   // aligned extents
//	m, _ := f.Mmap(ctx, 8<<20)                       // hugepage-mappable
//	_ = m.Write(ctx, []byte("hello"), 0)
//	fmt.Println(ctx.Counters.HugeFaults)             // 1
//
// Everything runs in deterministic virtual time; throughput and latency
// results come from the simulated clock, never from the host's.
package repro

import (
	"repro/internal/experiments"
	"repro/internal/fstest"
	"repro/internal/geriatrix"
	"repro/internal/pmem"
	"repro/internal/sim"
	"repro/internal/vfs"
	"repro/internal/winefs"
)

// Re-exported core types.
type (
	// Device is a simulated persistent-memory device.
	Device = pmem.Device
	// Ctx is a simulated thread context carrying the virtual clock and
	// performance counters.
	Ctx = sim.Ctx
	// FS is the file-system interface implemented by WineFS and all
	// baselines.
	FS = vfs.FS
	// File is an open file handle.
	File = vfs.File
	// WineFSOptions configures Mkfs/Mount of WineFS instances.
	WineFSOptions = winefs.Options
	// AgingConfig configures the Geriatrix ager.
	AgingConfig = geriatrix.Config
	// ExperimentConfig sizes the paper-evaluation runners.
	ExperimentConfig = experiments.Config
)

// Consistency modes (paper §3.3).
const (
	Strict  = vfs.Strict
	Relaxed = vfs.Relaxed
)

// NewDevice creates a simulated PM device of the given byte size with the
// Optane-calibrated default cost model.
func NewDevice(size int64) *Device { return pmem.New(size) }

// NewDeviceNUMA creates a device spread over `nodes` NUMA nodes addressed
// by `cpus` logical CPUs.
func NewDeviceNUMA(size int64, nodes, cpus int) *Device {
	return pmem.NewWithConfig(pmem.Config{Size: size, Nodes: nodes, CPUs: cpus})
}

// NewThread creates a simulated thread pinned to a logical CPU.
func NewThread(id, cpu int) *Ctx { return sim.NewCtx(id, cpu) }

// MkfsWineFS formats dev as WineFS and mounts it.
func MkfsWineFS(ctx *Ctx, dev *Device, opts WineFSOptions) (*winefs.FS, error) {
	return winefs.Mkfs(ctx, dev, opts)
}

// MountWineFS mounts an existing WineFS, running crash recovery if the
// image was not cleanly unmounted.
func MountWineFS(ctx *Ctx, dev *Device, opts WineFSOptions) (*winefs.FS, error) {
	return winefs.Mount(ctx, dev, opts)
}

// CheckWineFS runs the offline consistency checker on a WineFS image.
func CheckWineFS(dev *Device) *winefs.CheckReport { return winefs.Check(dev) }

// FileSystems lists the names of every available file-system
// implementation.
func FileSystems() []string {
	var names []string
	for _, m := range fstest.All(8) {
		names = append(names, m.Name)
	}
	return names
}

// NewFS formats dev with the named file system ("WineFS", "ext4-DAX",
// "xfs-DAX", "PMFS", "NOVA", "NOVA-relaxed", "SplitFS", "Strata",
// "WineFS-relaxed").
func NewFS(ctx *Ctx, dev *Device, name string) (FS, error) {
	m, ok := fstest.ByName(name, 8)
	if !ok {
		return nil, errUnknownFS(name)
	}
	return m.Make(ctx, dev)
}

type errUnknownFS string

func (e errUnknownFS) Error() string { return "repro: unknown file system " + string(e) }

// Age runs the Geriatrix aging protocol (§5.1) against a mounted file
// system and returns the run statistics.
func Age(ctx *Ctx, fs FS, cfg AgingConfig) (geriatrix.Stats, error) {
	return geriatrix.New(fs, cfg).Run(ctx)
}
