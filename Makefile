GO ?= go

.PHONY: all build test check race vet bench bench-engine bench-json bench-scaling bench-cache bench-replicated bench-mmap bench-defrag bench-tier cache-race mmap-race defrag-race tier-race cluster-race fault-campaign cluster-campaign serve-smoke profile

all: build

build:
	$(GO) build ./...

test: build
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The experiments package replays whole paper figures and needs well over
# the default 10m per-package limit under the race detector.
race:
	$(GO) test -race -timeout 45m ./...

# check is the pre-merge gate: static analysis, the full suite under the
# race detector, and the plain tier-1 build+test pass.
check: vet race test

bench:
	$(GO) test -bench=. -benchmem ./...

# Engine microbenchmarks + the determinism golden test: the booking,
# charging and MMU fast paths (ns/op and allocs/op — the hot paths must
# stay allocation-free), the exact-vs-batched-vs-parallel golden test
# under the race detector, and the charge-amount table.
bench-engine:
	$(GO) test -run 'TestEngineDeterminismGolden|TestChargeAmountsPerOp|TestUseQuantaEquivalence' -race ./internal/workloads/ ./internal/pmem/ ./internal/sim/
	$(GO) test -run xxx -bench . -benchmem ./internal/sim/ ./internal/mmu/ ./internal/pmem/

# Machine-readable serving baseline: runs the -server bench, writes
# BENCH_server.json, and regression-checks it against the committed
# BENCH_baseline.json (work counters exact, contention timings within
# tolerance). Refresh the baseline by copying BENCH_server.json over it.
bench-json:
	$(GO) run ./cmd/winebench -server -quick -clients 4 -json BENCH_server.json -check-against BENCH_baseline.json

# fxmark-style scalability sweep: every sharing case (shared-read,
# disjoint-write, overlap-write, private-append, meta-contended) over
# 1→128 threads, direct and through winefsd, regression-checked against the
# committed BENCH_scaling.json. Work counters are exact at every scale;
# contention timings and allocator-placement counters are tolerance-checked
# only at ≤16 threads, where the host can keep their distribution tight
# (see strictTimingThreads in cmd/winebench/scaling.go). Refresh the
# baseline with `go run ./cmd/winebench -scaling -json BENCH_scaling.json`.
bench-scaling:
	$(GO) run ./cmd/winebench -scaling -check-against BENCH_scaling.json

# Client page-cache effectiveness sweep: the CachedMix workload uncached
# vs cached (internal/pagecache), hard-gated on the cached re-read phase
# being ≥5x cheaper per read, and regression-checked against the committed
# BENCH_cache.json (work counters and cache hit/miss counts exact, virtual
# timings within tolerance). Refresh the baseline with
# `go run ./cmd/winebench -cache -quick -clients 4 -json BENCH_cache.json`.
bench-cache:
	$(GO) run ./cmd/winebench -cache -quick -clients 4 -check-against BENCH_cache.json

# Zero-copy mapped-read sweep: a 32MiB file mapped through internal/vmm
# on unaged vs Geriatrix-aged images for WineFS and ext4-DAX, hard-gated
# on ≥90% unaged hugepage coverage and on aged ext4-DAX mapped reads
# costing ≥3x the unaged ones, then regression-checked against the
# committed BENCH_mmap.json (work and fault counters exact, virtual
# timings within tolerance). Refresh the baseline with
# `go run ./cmd/winebench -mmap -json BENCH_mmap.json`.
bench-mmap:
	$(GO) run ./cmd/winebench -mmap -check-against BENCH_mmap.json

# Online-defragmenter bench (§3.5): an adversarially aged image (zero
# free aligned extents) is mapped and the background defragmenter must
# recover ≥90% of the unaged hugepage coverage on the live mapping
# without refaults; the interference phase must land in the paper's
# 25-40% unthrottled band (§4) and stay ≤10% under the duty-cycle pacer.
# Regression-checked against the committed BENCH_defrag.json (coverage
# and migration work exact, virtual timings within tolerance). Refresh
# the baseline with `go run ./cmd/winebench -defrag -json BENCH_defrag.json`.
bench-defrag:
	$(GO) run ./cmd/winebench -defrag -check-against BENCH_defrag.json

# Tiered-storage graceful-degradation sweep: working sets of
# {0.5, 1, 1.5, 2}x PM capacity over a PM+SSD mount vs an all-in-PM
# control, 90/10 hotspot mix with interleaved migration passes.
# Hard gates: working sets that fit keep ≥75% of control throughput, a
# 2x working set keeps ≥25% (the heat-driven placement must hold the hot
# set in PM) and must have spilled at setup, and cold misses must show
# slow-device traffic charged at slow-device cost. Regression-checked
# against the committed BENCH_tier.json (work/migration counters exact,
# virtual timings within tolerance). Refresh the baseline with
# `go run ./cmd/winebench -tier -json BENCH_tier.json`.
bench-tier:
	$(GO) run ./cmd/winebench -tier -check-against BENCH_tier.json

# Replication overhead on the ServerMix baseline: the same fan-out runs
# plain and against a synchronous 2-replica cluster, hard-gated at ≤65%
# overhead on the summed client spans (the sync charge model itself costs
# ≈55%) and on the replicas ending byte-identical to the primary,
# then regression-checked against the committed BENCH_replicated.json
# (op counts and resyncs exact, record stream and spans within tolerance).
# Refresh the baseline with
# `go run ./cmd/winebench -replicated -clients 8 -json BENCH_replicated.json`.
bench-replicated:
	$(GO) run ./cmd/winebench -replicated -clients 8 -check-against BENCH_replicated.json

# The page-cache + lease coherence suite under the race detector,
# including the 8-concurrent-session storm (TestCacheRace8Sessions).
cache-race:
	$(GO) test -race -run 'TestCache|TestLease|TestRevoke|TestTwoSession|TestHit|TestDirty|TestLRU|TestCanonical|TestDenied|TestClose' ./internal/pagecache/ ./internal/fileserver/

# The mmap subsystem under the race detector: the 8-thread shared-mapping
# storm with concurrent truncation (TestMmapRace8Threads), the
# truncate/unlink/punch invalidation tests, the vmm unit tests and the
# mapping/lease coherence tests on both the client cache and the server.
mmap-race:
	$(GO) test -race -run 'TestMmap|TestServerMapRevokesClientLease|TestRemoteMapNotSupported|TestReadOnlyMapping|TestPrivateMapping|TestShared|TestSync|TestCloseFlushes|TestWindowed|TestMapPath|TestMapRequires' ./internal/vmm/ ./internal/winefs/ ./internal/pagecache/ ./internal/fileserver/

# The online defragmenter under the race detector: the 8-thread suite
# racing the defragmenter against foreground writers, truncates and live
# mmaps (TestDefragRace8Threads), crash-mid-defrag recovery, the
# rewrite-queue regression tests, the vmm re-promotion test and the
# runner convergence test.
defrag-race:
	$(GO) test -race -run 'TestDefrag|TestRepromote|TestRewriteQueue|TestRunner' ./internal/winefs/ ./internal/vmm/ ./internal/defrag/

# The tier subsystem under the race detector: the migration-vs-mmap
# race (a demotion relocating blocks under a live mapping must drain
# in-flight accesses before freeing), the crash-mid-migration sweeps,
# spill/ENOSPC behaviour, and the slow-device/pool unit tests.
tier-race:
	$(GO) test -race -run 'TestTier|TestSlowDevice|TestPool' ./internal/winefs/ ./internal/tier/

# Replication + failover under the race detector: the cluster engine's
# own tests (journal streaming, degraded mode, transparent failover,
# lease re-establishment) plus the campaign smoke slice.
cluster-race:
	$(GO) test -race -timeout 20m -run 'TestCluster|TestFailover|TestRecord|TestReplica|TestErrServerGone|TestLocalClose|TestShutdownCtx' ./internal/cluster/ ./internal/fileserver/ ./internal/crashmonkey/

# Boots winefsd on loopback TCP, drives a multi-client workload through
# fileserver.Client, and verifies the stats endpoint (end-to-end server
# smoke; also part of CI).
serve-smoke:
	$(GO) run ./cmd/winefsd -smoke

# The 1000-seed media-fault campaign (runs spread across host cores by
# sim.ParallelRunner; every other run mounts tiered and tears migration
# transactions) plus every poison/torn-write test, including the
# page-cache revoke-flush EIO path and the tier crash-consistency sweeps.
fault-campaign:
	$(GO) test -v -run 'TestFaultCampaign|TestRepair|TestDegraded|TestPoisoned|TestWraparound|TestTorn|TestTierCrash' ./internal/crashmonkey/ ./internal/winefs/ ./internal/pmem/ ./internal/pagecache/

# The 1000-seed replicated-cluster fault campaign: partition, replica-lag,
# torn-stream and mid-failover crashes, asserting no panic → no silent
# divergence → convergence (repair/resync where needed). Runs overlap on
# the host (they are wall-clock timer-bound), which is what makes 1000
# seeds affordable.
cluster-campaign:
	$(GO) test -v -run 'TestClusterCampaign' ./internal/crashmonkey/

# Profile the scaling sweep: writes cpu/mem/block profiles next to the
# report and prints the top-10 hottest functions. This is the loop that
# drove the engine fast-path work — rerun it before optimising further.
profile:
	$(GO) run ./cmd/winebench -scaling -cpuprofile cpu.pprof -memprofile mem.pprof -blockprofile block.pprof
	$(GO) tool pprof -top -nodecount=10 cpu.pprof
